(* Extended kernels beyond the paper's Table 4.1 suite — extra
   workloads a user of the tool would bring. They follow the same
   conventions (inputs at [Bench.input_base] left symbolic, outputs at
   [Bench.output_base], r13 reserved) and carry OCaml golden models, but
   they are *not* part of the reproduced figures. *)

open Bench.E

let m16 v = v land 0xFFFF
let s16 v = if v land 0x8000 <> 0 then v - 0x10000 else v
let in_at k = Bench.input_base + (2 * k)
let out_at k = Bench.output_base + (2 * k)

(* --- crc16: CCITT polynomial over 4 words, branchless -------------- *)

let crc_words = 4
let crc_poly = 0x1021

let b_crc16 =
  (* Branchless bit step: shifting CRC left puts the old MSB in the
     carry; SUBC materializes it as an all-ones/all-zeros mask that
     selects the polynomial. One path regardless of input data. *)
  let bit_step =
    [
      add (reg 5) (dreg 5) (* crc <<= 1, C = old msb *);
      mov (imm 0) (dreg 8);
      subc (imm 0) (dreg 8) (* r8 = C ? 0xFFFF : 0 ... inverted below *);
      xor (imm 0xFFFF) (dreg 8) (* r8 = C ? 0xFFFF : 0 *);
      and_ (imm crc_poly) (dreg 8);
      xor (reg 8) (dreg 5);
    ]
  in
  let word_step =
    (* xor the next data word into the top, then 16 bit steps *)
    [ mov (indinc 4) (dreg 7); xor (reg 7) (dreg 5); mov (imm 16) (dreg 9); lbl "crcbit" ]
    @ bit_step
    @ [ sub (imm 1) (dreg 9); jne "crcbit" ]
  in
  let body =
    [
      mov (imm Bench.input_base) (dreg 4);
      mov (imm 0xFFFF) (dreg 5) (* crc init *);
      mov (imm crc_words) (dreg 10);
      lbl "crcword";
    ]
    @ word_step
    @ [
        sub (imm 1) (dreg 10);
        jne "crcword";
        mov (reg 5) (dabs (out_at 0));
      ]
  in
  {
    Bench.name = "crc16";
    description = "CCITT CRC-16 over four words (branchless bit loop)";
    body;
    input_words = crc_words;
    output_words = 1;
    gen_inputs = (fun ~seed -> Bench.varied_words ~seed crc_words);
    reference =
      (fun ins ->
        let crc = ref 0xFFFF in
        List.iter
          (fun w ->
            crc := !crc lxor w;
            for _ = 1 to 16 do
              let msb = !crc land 0x8000 <> 0 in
              crc := m16 (!crc lsl 1);
              if msb then crc := !crc lxor crc_poly
            done)
          ins;
        [ !crc ]);
    loop_bound = 16 * crc_words;
    max_paths = 8;
  }

(* Subtlety check for the SUBC trick: after `add r5, r5` the carry is
   the old MSB. `mov #0, r8; subc #0, r8` computes r8 = 0 + ~0 + C =
   0xFFFF + C, i.e. 0xFFFF when C=0 and 0x0000 when C=1; the XOR with
   0xFFFF flips that to the desired mask. The golden model above is the
   ordinary bitwise CRC; the reference test suite checks they agree. *)

(* --- matmul2: 2x2 integer matrix multiply on the MPY --------------- *)

let b_matmul2 =
  (* inputs: a00 a01 a10 a11 b00 b01 b10 b11; output c row-major,
     low 16 bits of each dot product *)
  let dot ~ai0 ~ai1 ~bj0 ~bj1 ~out =
    [
      mov (abs (in_at ai0)) (dabs Isa.Memmap.mpy);
      mov (abs (in_at bj0)) (dabs Isa.Memmap.op2);
      mul_reslo 6;
      mov (abs (in_at ai1)) (dabs Isa.Memmap.mpy);
      mov (abs (in_at bj1)) (dabs Isa.Memmap.op2);
      mul_reslo 7;
      add (reg 7) (dreg 6);
      mov (reg 6) (dabs (out_at out));
    ]
  in
  let body =
    dot ~ai0:0 ~ai1:1 ~bj0:4 ~bj1:6 ~out:0
    @ dot ~ai0:0 ~ai1:1 ~bj0:5 ~bj1:7 ~out:1
    @ dot ~ai0:2 ~ai1:3 ~bj0:4 ~bj1:6 ~out:2
    @ dot ~ai0:2 ~ai1:3 ~bj0:5 ~bj1:7 ~out:3
  in
  {
    Bench.name = "matmul2";
    description = "2x2 integer matrix multiply on the hardware multiplier";
    body;
    input_words = 8;
    output_words = 4;
    gen_inputs = (fun ~seed -> Bench.varied_words ~seed 8);
    reference =
      (fun ins ->
        let a = Array.of_list ins in
        [
          m16 ((a.(0) * a.(4)) + (a.(1) * a.(6)));
          m16 ((a.(0) * a.(5)) + (a.(1) * a.(7)));
          m16 ((a.(2) * a.(4)) + (a.(3) * a.(6)));
          m16 ((a.(2) * a.(5)) + (a.(3) * a.(7)));
        ]);
    loop_bound = 4;
    max_paths = 4;
  }

(* --- median3: median of three samples (control-heavy) -------------- *)

let b_median3 =
  (* median(a,b,c) = max(min(a,b), min(max(a,b), c)), signed *)
  let body =
    [
      mov (abs (in_at 0)) (dreg 4);
      mov (abs (in_at 1)) (dreg 5);
      mov (abs (in_at 2)) (dreg 6);
      (* r7 = min(a,b), r8 = max(a,b) *)
      mov (reg 4) (dreg 7);
      mov (reg 5) (dreg 8);
      cmp (reg 5) (dreg 4) (* a - b *);
      jl "m3_ab_sorted" (* a < b: r7=a, r8=b already *);
      mov (reg 5) (dreg 7);
      mov (reg 4) (dreg 8);
      lbl "m3_ab_sorted";
      (* r8 = min(max(a,b), c) *)
      cmp (reg 6) (dreg 8) (* max - c *);
      jl "m3_keep" (* max < c: keep max *);
      mov (reg 6) (dreg 8);
      lbl "m3_keep";
      (* median = max(r7, r8) *)
      cmp (reg 8) (dreg 7) (* min - mid *);
      jl "m3_mid";
      mov (reg 7) (dreg 8);
      lbl "m3_mid";
      mov (reg 8) (dabs (out_at 0));
    ]
  in
  {
    Bench.name = "median3";
    description = "median of three samples (nested signed comparisons)";
    body;
    input_words = 3;
    output_words = 1;
    gen_inputs = (fun ~seed -> Bench.varied_words ~seed 3);
    reference =
      (fun ins ->
        match List.map s16 ins with
        | [ a; b; c ] ->
          let lo, hi = if a < b then (a, b) else (b, a) in
          let mid = if hi < c then hi else c in
          [ m16 (if lo < mid then mid else lo) ]
        | _ -> assert false);
    loop_bound = 4;
    max_paths = 16;
  }

(* --- sad4: sum of absolute differences over four pairs -------------- *)

let b_sad4 =
  let pair k =
    [
      mov (abs (in_at k)) (dreg 6);
      sub (abs (in_at (k + 4))) (dreg 6) (* a[k] - b[k] *);
      jge (Printf.sprintf "sad_pos_%d" k);
      xor (imm 0xFFFF) (dreg 6);
      add (imm 1) (dreg 6) (* negate *);
      lbl (Printf.sprintf "sad_pos_%d" k);
      add (reg 6) (dreg 5);
    ]
  in
  let body =
    [ mov (imm 0) (dreg 5) ]
    @ List.concat (List.init 4 pair)
    @ [ mov (reg 5) (dabs (out_at 0)) ]
  in
  {
    Bench.name = "sad4";
    description = "sum of absolute differences over four sample pairs";
    body;
    input_words = 8;
    output_words = 1;
    gen_inputs =
      (fun ~seed -> List.map (fun w -> w land 0x3FFF) (Bench.varied_words ~seed 8));
    reference =
      (fun ins ->
        let a = Array.of_list ins in
        let sad = ref 0 in
        for k = 0 to 3 do
          (* the asm computes a - b with signed overflow semantics on
             16-bit values; inputs are masked to 14 bits so the
             subtraction cannot overflow and abs is exact *)
          sad := m16 (!sad + Stdlib.abs (s16 (m16 (a.(k) - a.(k + 4)))))
        done;
        [ !sad ]);
    loop_bound = 4;
    max_paths = 64;
  }

let all = [ b_crc16; b_matmul2; b_median3; b_sad4 ]

let find name =
  match List.find_opt (fun b -> String.equal b.Bench.name name) all with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Extended.find: unknown kernel %s" name)
