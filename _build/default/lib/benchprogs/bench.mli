(** The benchmark suite (paper, Table 4.1).

    Embedded-sensor benchmarks (mult, binSearch, tea8, intFilt, tHold,
    div, inSort, rle, intAVG), EEMBC-style kernels (autoCorr, FFT,
    ConvEn, Viterbi) and a control benchmark (PI), hand-written in
    MSP430-subset assembly (the substitute for the paper's compiled C
    sources — see DESIGN.md §2).

    Conventions: inputs live in RAM at {!input_base} and are {e not}
    initialized by the binary, so symbolic analysis sees them as X;
    outputs are written to RAM at {!output_base}; register r13 is
    reserved as the optimizer's scratch register; every program stops
    the watchdog and sets up the stack first and ends at the [_halt]
    self-jump. *)

type t = {
  name : string;
  description : string;
  body : Isa.Asm.item list;  (** without prologue/epilogue *)
  input_words : int;  (** words at {!input_base} left symbolic *)
  output_words : int;  (** words at {!output_base} to check *)
  gen_inputs : seed:int -> int list;  (** concrete input sets for profiling *)
  reference : int list -> int list;  (** OCaml golden model: inputs -> outputs *)
  loop_bound : int;  (** iteration bound for Seen-edge energy analysis *)
  max_paths : int;  (** expected upper bound on explored paths *)
}

val input_base : int
val output_base : int

(** Full program: prologue + body + halt epilogue, assembled. *)
val assemble : t -> Isa.Asm.image

(** The 14 benchmarks, in the paper's order. *)
val all : t list

val find : string -> t

(** The paper's Chapter 2 subset (MSP430F1610 measurements). *)
val measured_subset : string list

(** {1 Assembly EDSL} (exposed for tests and the stressmark generator) *)

module E : sig
  open Isa

  val i : Insn.instr -> Asm.item
  val lbl : string -> Asm.item
  val imm : int -> Insn.src
  val immv : Insn.value -> Insn.src
  val reg : int -> Insn.src

  (** [idx off r] = off(r) *)
  val idx : int -> int -> Insn.src

  val ind : int -> Insn.src
  val indinc : int -> Insn.src
  val abs : int -> Insn.src
  val dreg : int -> Insn.dst
  val didx : int -> int -> Insn.dst
  val dabs : int -> Insn.dst
  val mov : Insn.src -> Insn.dst -> Asm.item
  val add : Insn.src -> Insn.dst -> Asm.item
  val addc : Insn.src -> Insn.dst -> Asm.item
  val sub : Insn.src -> Insn.dst -> Asm.item
  val subc : Insn.src -> Insn.dst -> Asm.item
  val cmp : Insn.src -> Insn.dst -> Asm.item
  val bit : Insn.src -> Insn.dst -> Asm.item
  val bic : Insn.src -> Insn.dst -> Asm.item
  val bis : Insn.src -> Insn.dst -> Asm.item
  val xor : Insn.src -> Insn.dst -> Asm.item
  val and_ : Insn.src -> Insn.dst -> Asm.item
  val rra : int -> Asm.item
  val rrc : int -> Asm.item
  val swpb : int -> Asm.item
  val sxt : int -> Asm.item
  val push : Insn.src -> Asm.item
  val pop : int -> Asm.item
  val call : string -> Asm.item
  val ret : Asm.item
  val jmp : string -> Asm.item
  val jne : string -> Asm.item
  val jeq : string -> Asm.item
  val jc : string -> Asm.item
  val jnc : string -> Asm.item
  val jn : string -> Asm.item
  val jge : string -> Asm.item
  val jl : string -> Asm.item
  val nop : Asm.item

  (** Start an unsigned multiply: writes MPY then OP2. *)
  val mul_start : op1:Insn.src -> op2:Insn.src -> Asm.item list

  (** Read RESLO into a register (safe timing: absolute mode). *)
  val mul_reslo : int -> Asm.item

  val mul_reshi : int -> Asm.item

  (** Standard prologue: stack, watchdog stop, r3 init. *)
  val prologue : Asm.item list
end

(** Deterministic pseudo-random word stream for input generation. *)
val lcg_words : seed:int -> int -> int list

(** Profiling input sets: seeds 1/2/3/5 are adversarial patterns
    (near-zero, alternating, all-ones, max-toggle pairs), other seeds
    are pseudo-random — so input sweeps expose the input-induced power
    variation that motivates guardbanding. *)
val varied_words : seed:int -> int -> int list
