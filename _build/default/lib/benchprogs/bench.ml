type t = {
  name : string;
  description : string;
  body : Isa.Asm.item list;
  input_words : int;
  output_words : int;
  gen_inputs : seed:int -> int list;
  reference : int list -> int list;
  loop_bound : int;
  max_paths : int;
}

let input_base = Isa.Memmap.ram_base + 0x100 (* 0x0300 *)
let output_base = Isa.Memmap.ram_base + 0x200 (* 0x0400 *)

module E = struct
  open Isa

  let i x = Asm.I x
  let lbl s = Asm.Label s
  let imm n = Insn.S_imm (Insn.Lit n)
  let immv v = Insn.S_imm v
  let reg r = Insn.S_reg r
  let idx off r = Insn.S_idx (Insn.Lit off, r)
  let ind r = Insn.S_ind r
  let indinc r = Insn.S_ind_inc r
  let abs a = Insn.S_abs (Insn.Lit a)
  let dreg r = Insn.D_reg r
  let didx off r = Insn.D_idx (Insn.Lit off, r)
  let dabs a = Insn.D_abs (Insn.Lit a)
  let i1 op s d = i (Insn.I1 (op, s, d))
  let mov s d = i1 Insn.MOV s d
  let add s d = i1 Insn.ADD s d
  let addc s d = i1 Insn.ADDC s d
  let sub s d = i1 Insn.SUB s d
  let subc s d = i1 Insn.SUBC s d
  let cmp s d = i1 Insn.CMP s d
  let bit s d = i1 Insn.BIT s d
  let bic s d = i1 Insn.BIC s d
  let bis s d = i1 Insn.BIS s d
  let xor s d = i1 Insn.XOR s d
  let and_ s d = i1 Insn.AND s d
  let rra r = i (Insn.I2 (Insn.RRA, Insn.S_reg r))
  let rrc r = i (Insn.I2 (Insn.RRC, Insn.S_reg r))
  let swpb r = i (Insn.I2 (Insn.SWPB, Insn.S_reg r))
  let sxt r = i (Insn.I2 (Insn.SXT, Insn.S_reg r))
  let push s = i (Insn.I2 (Insn.PUSH, s))
  let pop r = i (Insn.pop r)
  let call s = i (Insn.I2 (Insn.CALL, Insn.S_imm (Insn.Sym s)))
  let ret = i Insn.ret
  let j c s = i (Insn.J (c, Insn.Sym s))
  let jmp s = j Insn.JMP s
  let jne s = j Insn.JNE s
  let jeq s = j Insn.JEQ s
  let jc s = j Insn.JC s
  let jnc s = j Insn.JNC s
  let jn s = j Insn.JN s
  let jge s = j Insn.JGE s
  let jl s = j Insn.JL s
  let nop = i Insn.nop

  let mul_start ~op1 ~op2 =
    [ mov op1 (dabs Memmap.mpy); mov op2 (dabs Memmap.op2) ]

  let mul_reslo r = mov (abs Memmap.reslo) (dreg r)
  let mul_reshi r = mov (abs Memmap.reshi) (dreg r)

  let prologue =
    [
      mov (imm (Memmap.ram_limit - 0x10)) (dreg 1);
      mov (imm 0x5A80) (dabs Memmap.wdtctl);
      nop (* initializes r3 so later NOPs are write-free *);
    ]
end

let assemble b =
  Isa.Asm.assemble
    {
      Isa.Asm.name = b.name;
      entry = "start";
      sections =
        [
          {
            Isa.Asm.org = Isa.Memmap.rom_base;
            items =
              ((Isa.Asm.Label "start" :: E.prologue) @ b.body)
              @ Isa.Asm.halt_items;
          };
        ];
    }

let m16 v = v land 0xFFFF
let s16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let lcg_words ~seed n =
  let state = ref (seed lor 1) in
  List.init n (fun _ ->
      state := (!state * 1103515245) + 12345;
      (!state lsr 7) land 0xFFFF)

(* Input sets for profiling sweeps. Uniform random data exercises an
   "average" amount of switching; the first seeds are deliberately
   adversarial (near-zero data, alternating bit patterns, all-ones) so
   profiling sees the input-induced peak power variation that motivates
   guardbanding (paper, Chapter 2). *)
let varied_words ~seed n =
  match seed with
  | 1 -> List.init n (fun k -> (k * 3) land 0x7) (* near-zero: minimal toggling *)
  | 2 -> List.init n (fun k -> if k land 1 = 0 then 0xAAAA else 0x5555)
  | 3 -> List.init n (fun _ -> 0xFFFF)
  | 5 -> List.init n (fun k -> if k land 1 = 0 then 0xFFFF else 0x0001)
  | _ -> lcg_words ~seed n

(* ------------------------------------------------------------------ *)
(* Benchmarks. Each writes results to [output_base] so functional
   correctness is checkable against the OCaml reference model. *)
(* ------------------------------------------------------------------ *)

open E

let in_at k = input_base + (2 * k)
let out_at k = output_base + (2 * k)

(* --- mult: pairwise products of two 4-element vectors, 32-bit sums -- *)

let mult_n = 4

let b_mult =
  let body =
    (* r4 = input ptr a, r5 = input ptr b, r6/r7 = 32-bit accumulator *)
    [
      mov (imm input_base) (dreg 4);
      mov (imm (input_base + (2 * mult_n))) (dreg 5);
      mov (imm 0) (dreg 6);
      mov (imm 0) (dreg 7);
      mov (imm mult_n) (dreg 10);
      lbl "mloop";
      mov (indinc 4) (dabs Isa.Memmap.mpy);
      mov (indinc 5) (dabs Isa.Memmap.op2);
      mul_reslo 8;
      mul_reshi 9;
      add (reg 8) (dreg 6);
      addc (reg 9) (dreg 7);
      sub (imm 1) (dreg 10);
      jne "mloop";
      mov (reg 6) (dabs (out_at 0));
      mov (reg 7) (dabs (out_at 1));
    ]
  in
  {
    name = "mult";
    description = "vector multiply-accumulate on the hardware multiplier";
    body;
    input_words = 2 * mult_n;
    output_words = 2;
    gen_inputs = (fun ~seed -> varied_words ~seed (2 * mult_n));
    reference =
      (fun ins ->
        let a = Array.of_list ins in
        let acc = ref 0 in
        for k = 0 to mult_n - 1 do
          acc := !acc + (a.(k) * a.(mult_n + k))
        done;
        [ m16 !acc; m16 (!acc lsr 16) ]);
    loop_bound = 4;
    max_paths = 16;
  }

(* --- binSearch: binary search over a sorted 8-word input table ------ *)

let bs_n = 8

let b_binsearch =
  (* inputs: 8 sorted table words then the key; output: index or 0xFFFF *)
  let body =
    [
      mov (imm 0) (dreg 4) (* lo *);
      mov (imm (bs_n - 1)) (dreg 5) (* hi *);
      mov (abs (in_at bs_n)) (dreg 6) (* key *);
      mov (imm 0xFFFF) (dreg 9) (* result *);
      lbl "bsloop";
      cmp (reg 4) (dreg 5);
      jl "bsdone" (* hi < lo *);
      mov (reg 4) (dreg 7);
      add (reg 5) (dreg 7);
      rra 7 (* mid *);
      mov (reg 7) (dreg 8);
      add (reg 7) (dreg 8) (* mid*2 = byte offset *);
      add (imm input_base) (dreg 8);
      cmp (ind 8) (dreg 6) (* key - table[mid] *);
      jeq "bsfound";
      jl "bsleft" (* key < table[mid] *);
      mov (reg 7) (dreg 4);
      add (imm 1) (dreg 4) (* lo = mid+1 *);
      jmp "bsloop";
      lbl "bsleft";
      mov (reg 7) (dreg 5);
      sub (imm 1) (dreg 5) (* hi = mid-1 *);
      jmp "bsloop";
      lbl "bsfound";
      mov (reg 7) (dreg 9);
      lbl "bsdone";
      mov (reg 9) (dabs (out_at 0));
    ]
  in
  {
    name = "binSearch";
    description = "binary search over a sorted input table";
    body;
    input_words = bs_n + 1;
    output_words = 1;
    gen_inputs =
      (fun ~seed ->
        let raw =
          List.sort compare
            (List.map (fun w -> w land 0x7FFF) (lcg_words ~seed bs_n))
        in
        let key =
          match lcg_words ~seed:(seed + 7) 1 with
          | [ k ] -> k land 0x7FFF
          | _ -> 0
        in
        (* sometimes search for an element actually present *)
        let key = if seed mod 2 = 0 then List.nth raw (seed mod bs_n) else key in
        raw @ [ key ]);
    reference =
      (fun ins ->
        let table = Array.of_list (List.filteri (fun k _ -> k < bs_n) ins) in
        let key = List.nth ins bs_n in
        let rec go lo hi =
          if hi < lo then 0xFFFF
          else
            let mid = (lo + hi) / 2 in
            (* the asm compares signed *)
            if s16 table.(mid) = s16 key then mid
            else if s16 key < s16 table.(mid) then go lo (mid - 1)
            else go (mid + 1) hi
        in
        [ go 0 (bs_n - 1) ]);
    loop_bound = 8;
    max_paths = 256;
  }

(* --- tea8: 8 rounds of a 16-bit TEA-like cipher --------------------- *)

let tea_rounds = 8
let tea_k = [| 0x1234; 0x5678; 0x9ABC; 0xDEF0 |]
let tea_delta = 0x9E37

let b_tea8 =
  (* v0 = r4, v1 = r5, sum = r6; inputs: v0 v1 *)
  let shr5_into ~src ~dst =
    (* dst = src >> 5 (logical), via clrc+rrc x5 *)
    [ mov (reg src) (dreg dst) ]
    @ List.concat
        (List.init 5 (fun _ -> [ bic (imm 1) (dreg 2); rrc dst ]))
  in
  let shl4 r = List.init 4 (fun _ -> add (reg r) (dreg r)) in
  let round =
    (* v0 += ((v1<<4) + k0) ^ (v1 + sum) ^ ((v1>>5) + k1) *)
    [ add (imm tea_delta) (dreg 6) ]
    @ [ mov (reg 5) (dreg 7) ]
    @ shl4 7
    @ [ add (imm tea_k.(0)) (dreg 7) ]
    @ [ mov (reg 5) (dreg 8); add (reg 6) (dreg 8); xor (reg 8) (dreg 7) ]
    @ shr5_into ~src:5 ~dst:8
    @ [ add (imm tea_k.(1)) (dreg 8); xor (reg 8) (dreg 7); add (reg 7) (dreg 4) ]
    (* v1 += ((v0<<4) + k2) ^ (v0 + sum) ^ ((v0>>5) + k3) *)
    @ [ mov (reg 4) (dreg 7) ]
    @ shl4 7
    @ [ add (imm tea_k.(2)) (dreg 7) ]
    @ [ mov (reg 4) (dreg 8); add (reg 6) (dreg 8); xor (reg 8) (dreg 7) ]
    @ shr5_into ~src:4 ~dst:8
    @ [ add (imm tea_k.(3)) (dreg 8); xor (reg 8) (dreg 7); add (reg 7) (dreg 5) ]
  in
  let body =
    [
      mov (abs (in_at 0)) (dreg 4);
      mov (abs (in_at 1)) (dreg 5);
      mov (imm 0) (dreg 6);
      mov (imm tea_rounds) (dreg 10);
      lbl "tealoop";
    ]
    @ round
    @ [
        sub (imm 1) (dreg 10);
        jne "tealoop";
        mov (reg 4) (dabs (out_at 0));
        mov (reg 5) (dabs (out_at 1));
      ]
  in
  {
    name = "tea8";
    description = "8 rounds of 16-bit TEA-style encryption (shift/xor/add)";
    body;
    input_words = 2;
    output_words = 2;
    gen_inputs = (fun ~seed -> varied_words ~seed 2);
    reference =
      (fun ins ->
        let v0 = ref (List.nth ins 0) and v1 = ref (List.nth ins 1) in
        let sum = ref 0 in
        let shl4 v = m16 (v lsl 4) in
        let shr5 v = v lsr 5 in
        for _ = 1 to tea_rounds do
          sum := m16 (!sum + tea_delta);
          v0 :=
            m16
              (!v0
              + (m16 (shl4 !v1 + tea_k.(0))
                lxor m16 (!v1 + !sum)
                lxor m16 (shr5 !v1 + tea_k.(1))));
          v1 :=
            m16
              (!v1
              + (m16 (shl4 !v0 + tea_k.(2))
                lxor m16 (!v0 + !sum)
                lxor m16 (shr5 !v0 + tea_k.(3))))
        done;
        [ !v0; !v1 ]);
    loop_bound = tea_rounds;
    max_paths = 4;
  }

(* --- intFilt: 3-tap FIR over 6 samples ------------------------------ *)

let fir_taps = [| 3; 5; 2 |]
let fir_n = 6

let b_intfilt =
  let body =
    [
      mov (imm input_base) (dreg 4) (* sample ptr *);
      mov (imm output_base) (dreg 5) (* out ptr *);
      mov (imm (fir_n - 2)) (dreg 10);
      lbl "floop";
      (* acc = t0*x[i] + t1*x[i+1] + t2*x[i+2] (low 16 bits) *)
      mov (imm fir_taps.(0)) (dabs Isa.Memmap.mpy);
      mov (ind 4) (dabs Isa.Memmap.op2);
      mul_reslo 6;
      mov (imm fir_taps.(1)) (dabs Isa.Memmap.mpy);
      mov (idx 2 4) (dabs Isa.Memmap.op2);
      mul_reslo 7;
      add (reg 7) (dreg 6);
      mov (imm fir_taps.(2)) (dabs Isa.Memmap.mpy);
      mov (idx 4 4) (dabs Isa.Memmap.op2);
      mul_reslo 7;
      add (reg 7) (dreg 6);
      mov (reg 6) (didx 0 5);
      add (imm 2) (dreg 4);
      add (imm 2) (dreg 5);
      sub (imm 1) (dreg 10);
      jne "floop";
    ]
  in
  {
    name = "intFilt";
    description = "3-tap integer FIR filter using the hardware multiplier";
    body;
    input_words = fir_n;
    output_words = fir_n - 2;
    gen_inputs = (fun ~seed -> varied_words ~seed fir_n);
    reference =
      (fun ins ->
        let x = Array.of_list ins in
        List.init (fir_n - 2) (fun k ->
            m16
              ((fir_taps.(0) * x.(k))
              + (fir_taps.(1) * x.(k + 1))
              + (fir_taps.(2) * x.(k + 2)))));
    loop_bound = fir_n;
    max_paths = 4;
  }

(* --- tHold: count samples above a threshold ------------------------- *)

let th_n = 6
let th_threshold = 0x4000

let b_thold =
  let body =
    [
      mov (imm input_base) (dreg 4);
      mov (imm 0) (dreg 5) (* count *);
      mov (imm th_n) (dreg 10);
      lbl "tloop";
      cmp (imm th_threshold) (didx 0 4) (* x[i] - T *);
      jl "tskip" (* signed x[i] < T *);
      add (imm 1) (dreg 5);
      lbl "tskip";
      add (imm 2) (dreg 4);
      sub (imm 1) (dreg 10);
      jne "tloop";
      mov (reg 5) (dabs (out_at 0));
    ]
  in
  {
    name = "tHold";
    description = "threshold detection: count samples above a level";
    body;
    input_words = th_n;
    output_words = 1;
    gen_inputs = (fun ~seed -> varied_words ~seed th_n);
    reference =
      (fun ins ->
        [
          List.fold_left
            (fun acc x -> if s16 x >= s16 th_threshold then acc + 1 else acc)
            0 ins;
        ]);
    loop_bound = th_n;
    max_paths = 256;
  }

(* --- div: 8-bit restoring division ---------------------------------- *)

let b_div =
  (* inputs: dividend (8-bit used), divisor (8-bit, forced nonzero);
     outputs: quotient, remainder *)
  let body =
    [
      mov (abs (in_at 0)) (dreg 4);
      and_ (imm 0x00FF) (dreg 4);
      swpb 4 (* dividend in bits 8..15 so add shifts it out via carry *);
      mov (abs (in_at 1)) (dreg 5);
      and_ (imm 0x00FF) (dreg 5);
      bis (imm 1) (dreg 5) (* divisor, nonzero *);
      mov (imm 0) (dreg 6) (* remainder *);
      mov (imm 0) (dreg 7) (* quotient *);
      mov (imm 8) (dreg 10);
      lbl "dloop";
      (* branchless bit feed: carry out of the dividend shift goes
         straight into the remainder shift *)
      add (reg 4) (dreg 4) (* C = next dividend bit *);
      addc (reg 6) (dreg 6) (* rem = rem<<1 | bit *);
      add (reg 7) (dreg 7) (* quotient <<= 1 *);
      cmp (reg 5) (dreg 6) (* rem - divisor *);
      jl "dskip";
      sub (reg 5) (dreg 6);
      bis (imm 1) (dreg 7);
      lbl "dskip";
      sub (imm 1) (dreg 10);
      jne "dloop";
      mov (reg 7) (dabs (out_at 0));
      mov (reg 6) (dabs (out_at 1));
    ]
  in
  {
    name = "div";
    description = "8-bit restoring division";
    body;
    input_words = 2;
    output_words = 2;
    gen_inputs = (fun ~seed -> varied_words ~seed 2);
    reference =
      (fun ins ->
        let dividend = List.nth ins 0 land 0xFF in
        let divisor = List.nth ins 1 land 0xFF lor 1 in
        [ dividend / divisor; dividend mod divisor ]);
    loop_bound = 8;
    max_paths = 512;
  }

(* --- inSort: insertion sort of 5 words ------------------------------ *)

let sort_n = 5

let b_insort =
  (* copy input to output region, then insertion-sort the output *)
  let copy =
    List.concat
      (List.init sort_n (fun k -> [ mov (abs (in_at k)) (dreg 7); mov (reg 7) (dabs (out_at k)) ]))
  in
  let body =
    copy
    @ [
        mov (imm 1) (dreg 4) (* i *);
        lbl "souter";
        cmp (imm sort_n) (dreg 4);
        jge "sdone";
        (* key = out[i]; j = i-1 *)
        mov (reg 4) (dreg 8);
        add (reg 8) (dreg 8);
        add (imm output_base) (dreg 8) (* &out[i] *);
        mov (ind 8) (dreg 5) (* key *);
        mov (reg 4) (dreg 6);
        sub (imm 1) (dreg 6) (* j *);
        lbl "sinner";
        cmp (imm 0) (dreg 6);
        jl "sinsert";
        mov (reg 6) (dreg 9);
        add (reg 9) (dreg 9);
        add (imm output_base) (dreg 9) (* &out[j] *);
        cmp (reg 5) (didx 0 9) (* out[j] - key *);
        jl "sinsert" (* out[j] < key: stop (signed) *);
        (* wait: we want descending shift while out[j] > key *)
        mov (ind 9) (didx 2 9) (* out[j+1] = out[j] *);
        sub (imm 1) (dreg 6);
        jmp "sinner";
        lbl "sinsert";
        (* place key at j+1 *)
        mov (reg 6) (dreg 9);
        add (imm 1) (dreg 9);
        add (reg 9) (dreg 9);
        add (imm output_base) (dreg 9);
        mov (reg 5) (didx 0 9);
        add (imm 1) (dreg 4);
        jmp "souter";
        lbl "sdone";
      ]
  in
  {
    name = "inSort";
    description = "insertion sort of five words";
    body;
    input_words = sort_n;
    output_words = sort_n;
    gen_inputs = (fun ~seed -> varied_words ~seed sort_n);
    reference = (fun ins -> List.sort (fun a b -> compare (s16 a) (s16 b)) ins);
    loop_bound = sort_n * sort_n;
    max_paths = 1024;
  }

(* --- rle: run lengths of adjacent equal words ----------------------- *)

let rle_n = 6

let b_rle =
  (* output: for each position i in 1..n-1, out word accumulates a
     bitmask of "same as previous" plus final run count *)
  let body =
    [
      mov (imm input_base) (dreg 4);
      mov (imm 1) (dreg 5) (* current run length *);
      mov (imm 1) (dreg 6) (* number of runs *);
      mov (imm 0) (dreg 7) (* max run length *);
      mov (imm (rle_n - 1)) (dreg 10);
      lbl "rloop";
      mov (ind 4) (dreg 8);
      cmp (idx 2 4) (dreg 8) (* x[i] vs x[i+1] *);
      jeq "rsame";
      (* run ends *)
      cmp (reg 5) (dreg 7);
      jge "rnomax";
      mov (reg 5) (dreg 7);
      lbl "rnomax";
      mov (imm 1) (dreg 5);
      add (imm 1) (dreg 6);
      jmp "rnext";
      lbl "rsame";
      add (imm 1) (dreg 5);
      lbl "rnext";
      add (imm 2) (dreg 4);
      sub (imm 1) (dreg 10);
      jne "rloop";
      cmp (reg 5) (dreg 7);
      jge "rfinmax";
      mov (reg 5) (dreg 7);
      lbl "rfinmax";
      mov (reg 6) (dabs (out_at 0));
      mov (reg 7) (dabs (out_at 1));
    ]
  in
  {
    name = "rle";
    description = "run-length statistics over adjacent samples";
    body;
    input_words = rle_n;
    output_words = 2;
    gen_inputs =
      (fun ~seed ->
        (* low-cardinality samples so runs actually occur *)
        List.map (fun w -> w land 0x3) (lcg_words ~seed rle_n));
    reference =
      (fun ins ->
        let x = Array.of_list ins in
        let runs = ref 1 and cur = ref 1 and maxr = ref 0 in
        for k = 0 to rle_n - 2 do
          if x.(k + 1) = x.(k) then incr cur
          else begin
            (* the asm updates max with signed compare max7 <= cur-? *)
            if !cur > !maxr then maxr := !cur;
            cur := 1;
            incr runs
          end
        done;
        if !cur > !maxr then maxr := !cur;
        [ !runs; !maxr ]);
    loop_bound = rle_n;
    max_paths = 512;
  }

(* --- intAVG: average of 8 words ------------------------------------- *)

let avg_n = 8

let b_intavg =
  let body =
    [
      mov (imm input_base) (dreg 4);
      mov (imm 0) (dreg 5);
      mov (imm 0) (dreg 6) (* 32-bit sum high *);
      mov (imm avg_n) (dreg 10);
      lbl "aloop";
      add (indinc 4) (dreg 5);
      addc (imm 0) (dreg 6);
      sub (imm 1) (dreg 10);
      jne "aloop";
      (* divide 32-bit sum by 8: three right shifts through the pair *)
    ]
    @ List.concat
        (List.init 3 (fun _ ->
             [ bic (imm 1) (dreg 2); rrc 6; rrc 5 ]))
    @ [ mov (reg 5) (dabs (out_at 0)) ]
  in
  {
    name = "intAVG";
    description = "average of eight samples (sum and shift)";
    body;
    input_words = avg_n;
    output_words = 1;
    gen_inputs = (fun ~seed -> varied_words ~seed avg_n);
    reference =
      (fun ins ->
        let sum = List.fold_left ( + ) 0 ins in
        [ m16 (sum / avg_n) ]);
    loop_bound = avg_n;
    max_paths = 4;
  }

(* --- autoCorr: autocorrelation at lags 1 and 2 ---------------------- *)

let ac_n = 6

let b_autocorr =
  let lag_loop lag label =
    [
      mov (imm input_base) (dreg 4);
      mov (imm 0) (dreg 6);
      mov (imm 0) (dreg 7);
      mov (imm (ac_n - lag)) (dreg 10);
      lbl label;
      mov (ind 4) (dabs Isa.Memmap.mpy);
      mov (idx (2 * lag) 4) (dabs Isa.Memmap.op2);
      mul_reslo 8;
      mul_reshi 9;
      add (reg 8) (dreg 6);
      addc (reg 9) (dreg 7);
      add (imm 2) (dreg 4);
      sub (imm 1) (dreg 10);
      jne label;
    ]
  in
  let body =
    lag_loop 1 "ac1"
    @ [ mov (reg 6) (dabs (out_at 0)); mov (reg 7) (dabs (out_at 1)) ]
    @ lag_loop 2 "ac2"
    @ [ mov (reg 6) (dabs (out_at 2)); mov (reg 7) (dabs (out_at 3)) ]
  in
  {
    name = "autoCorr";
    description = "autocorrelation at lags 1 and 2 (EEMBC-style)";
    body;
    input_words = ac_n;
    output_words = 4;
    gen_inputs = (fun ~seed -> varied_words ~seed ac_n);
    reference =
      (fun ins ->
        let x = Array.of_list ins in
        let corr lag =
          let acc = ref 0 in
          for k = 0 to ac_n - 1 - lag do
            acc := !acc + (x.(k) * x.(k + lag))
          done;
          [ m16 !acc; m16 (!acc lsr 16) ]
        in
        corr 1 @ corr 2);
    loop_bound = ac_n;
    max_paths = 4;
  }

(* --- FFT: 4-point radix-2 DIT on integer data ------------------------ *)

let b_fft =
  (* inputs: re0..re3, im0..im3; twiddles for N=4 are +-1/+-j so the
     butterflies are pure add/sub. Outputs interleaved re,im. *)
  let body =
    [
      (* load *)
      mov (abs (in_at 0)) (dreg 4);
      mov (abs (in_at 1)) (dreg 5);
      mov (abs (in_at 2)) (dreg 6);
      mov (abs (in_at 3)) (dreg 7);
      mov (abs (in_at 4)) (dreg 8);
      mov (abs (in_at 5)) (dreg 9);
      mov (abs (in_at 6)) (dreg 10);
      mov (abs (in_at 7)) (dreg 11);
      (* stage 1: (0,2) and (1,3) on re (r4..r7) and im (r8..r11) *)
      mov (reg 4) (dreg 12);
      add (reg 6) (dreg 4) (* re0' = re0+re2 *);
      sub (reg 6) (dreg 12);
      mov (reg 12) (dreg 6) (* re2' = re0-re2 *);
      mov (reg 5) (dreg 12);
      add (reg 7) (dreg 5);
      sub (reg 7) (dreg 12);
      mov (reg 12) (dreg 7);
      mov (reg 8) (dreg 12);
      add (reg 10) (dreg 8);
      sub (reg 10) (dreg 12);
      mov (reg 12) (dreg 10);
      mov (reg 9) (dreg 12);
      add (reg 11) (dreg 9);
      sub (reg 11) (dreg 12);
      mov (reg 12) (dreg 11);
      (* stage 2: X0 = a+b; X2 = a-b on (0,1); X1 = c - j*d, X3 = c + j*d
         on (2,3): re: c.re + d.im / c.re - d.im; im: c.im -+ d.re *)
      mov (reg 4) (dreg 12);
      add (reg 5) (dreg 4) (* X0.re *);
      sub (reg 5) (dreg 12) (* X2.re *);
      mov (reg 8) (dreg 5);
      add (reg 9) (dreg 8) (* X0.im *);
      sub (reg 9) (dreg 5) (* X2.im *);
      (* now r4=X0.re r8=X0.im r12=X2.re r5=X2.im ;
         r6=c.re r7=d.re r10=c.im r11=d.im *)
      mov (reg 6) (dreg 9);
      add (reg 11) (dreg 6) (* X1.re = c.re + d.im *);
      sub (reg 11) (dreg 9) (* X3.re = c.re - d.im *);
      mov (reg 10) (dreg 11);
      sub (reg 7) (dreg 10) (* X1.im = c.im - d.re *);
      add (reg 7) (dreg 11) (* X3.im = c.im + d.re *);
      (* store: re0 im0 re1 im1 re2 im2 re3 im3 *)
      mov (reg 4) (dabs (out_at 0));
      mov (reg 8) (dabs (out_at 1));
      mov (reg 6) (dabs (out_at 2));
      mov (reg 10) (dabs (out_at 3));
      mov (reg 12) (dabs (out_at 4));
      mov (reg 5) (dabs (out_at 5));
      mov (reg 9) (dabs (out_at 6));
      mov (reg 11) (dabs (out_at 7));
    ]
  in
  {
    name = "FFT";
    description = "4-point radix-2 integer FFT (butterflies only)";
    body;
    input_words = 8;
    output_words = 8;
    gen_inputs = (fun ~seed -> varied_words ~seed 8);
    reference =
      (fun ins ->
        let re = Array.of_list (List.filteri (fun k _ -> k < 4) ins) in
        let im =
          Array.of_list (List.filteri (fun k _ -> k >= 4) ins)
        in
        (* X_k = sum_n x_n e^{-2pi i k n / 4}, 16-bit wrap-around *)
        let out = ref [] in
        for k = 3 downto 0 do
          let xr = ref 0 and xi = ref 0 in
          for n = 0 to 3 do
            (* e^{-i pi k n / 2}: cos/sin in {-1,0,1} *)
            let c, s =
              match k * n mod 4 with
              | 0 -> (1, 0)
              | 1 -> (0, -1)
              | 2 -> (-1, 0)
              | _ -> (0, 1)
            in
            xr := !xr + (c * re.(n)) - (s * im.(n));
            xi := !xi + (s * re.(n)) + (c * im.(n))
          done;
          out := m16 !xr :: m16 !xi :: !out
        done;
        !out);
    loop_bound = 4;
    max_paths = 4;
  }

(* --- ConvEn: K=3 rate-1/2 convolutional encoder, branchless --------- *)

let conv_bits = 8
let conv_g0 = 0b111
let conv_g1 = 0b101

let b_conven =
  (* parity of a 3-bit masked value, branchless: fold xor of bits 0..2.
     state in r5 (bits 0..2: newest in bit 0); input word in r4;
     outputs: two words with the g0 and g1 parity streams (bit k =
     parity for step k) *)
  let parity_into ~mask ~outreg =
    (* r7 = state & mask; fold: r7 ^= r7>>1; r7 ^= r7>>2; bit0 = parity *)
    [
      mov (reg 5) (dreg 7);
      and_ (imm mask) (dreg 7);
      mov (reg 7) (dreg 8);
      bic (imm 1) (dreg 2);
      rrc 8;
      xor (reg 8) (dreg 7);
      mov (reg 7) (dreg 8);
      bic (imm 1) (dreg 2);
      rrc 8;
      bic (imm 1) (dreg 2);
      rrc 8;
      xor (reg 8) (dreg 7);
      and_ (imm 1) (dreg 7);
      (* shift into output stream: out = (out << 1) | parity *)
      add (reg outreg) (dreg outreg);
      bis (reg 7) (dreg outreg);
    ]
  in
  let step =
    (* bring next input bit (bit 0 of r4) into state; r4 >>= 1 *)
    [
      add (reg 5) (dreg 5) (* state <<= 1 *);
      mov (reg 4) (dreg 7);
      and_ (imm 1) (dreg 7);
      bis (reg 7) (dreg 5);
      and_ (imm 0x7) (dreg 5);
      bic (imm 1) (dreg 2);
      rrc 4;
    ]
    @ parity_into ~mask:conv_g0 ~outreg:9
    @ parity_into ~mask:conv_g1 ~outreg:10
  in
  let body =
    [
      mov (abs (in_at 0)) (dreg 4);
      mov (imm 0) (dreg 5);
      mov (imm 0) (dreg 9);
      mov (imm 0) (dreg 10);
      mov (imm conv_bits) (dreg 11);
      lbl "cloop";
    ]
    @ step
    @ [
        sub (imm 1) (dreg 11);
        jne "cloop";
        mov (reg 9) (dabs (out_at 0));
        mov (reg 10) (dabs (out_at 1));
      ]
  in
  {
    name = "ConvEn";
    description = "rate-1/2 K=3 convolutional encoder (branchless)";
    body;
    input_words = 1;
    output_words = 2;
    gen_inputs = (fun ~seed -> varied_words ~seed 1);
    reference =
      (fun ins ->
        let w = List.nth ins 0 in
        let state = ref 0 and o0 = ref 0 and o1 = ref 0 in
        for k = 0 to conv_bits - 1 do
          let bitv = (w lsr k) land 1 in
          state := ((!state lsl 1) lor bitv) land 0x7;
          let parity m =
            let t = !state land m in
            (t lxor (t lsr 1) lxor (t lsr 2)) land 1
          in
          o0 := (!o0 lsl 1) lor parity conv_g0;
          o1 := (!o1 lsl 1) lor parity conv_g1
        done;
        [ m16 !o0; m16 !o1 ]);
    loop_bound = conv_bits;
    max_paths = 4;
  }

(* --- Viterbi: 2-state trellis, 3 steps ------------------------------ *)

let vit_steps = 3

let b_viterbi =
  (* Path metrics m0 (r5), m1 (r6); per step, branch metrics derived
     from the received symbol r[i] (X input): bm = r[i] & 0xF,
     bm' = (~r[i]) & 0xF. Add-compare-select per state forks on X. *)
  let step k =
    [
      mov (abs (in_at k)) (dreg 7);
      and_ (imm 0xF) (dreg 7) (* bm *);
      mov (abs (in_at k)) (dreg 8);
      xor (imm 0xFFFF) (dreg 8);
      and_ (imm 0xF) (dreg 8) (* bm' *);
      (* state0' = min(m0 + bm, m1 + bm') *)
      mov (reg 5) (dreg 9);
      add (reg 7) (dreg 9);
      mov (reg 6) (dreg 10);
      add (reg 8) (dreg 10);
      cmp (reg 10) (dreg 9) (* (m0+bm) - (m1+bm') *);
      jl (Printf.sprintf "v0_%d" k);
      mov (reg 10) (dreg 9);
      lbl (Printf.sprintf "v0_%d" k);
      (* state1' = min(m0 + bm', m1 + bm) *)
      mov (reg 5) (dreg 11);
      add (reg 8) (dreg 11);
      mov (reg 6) (dreg 12);
      add (reg 7) (dreg 12);
      cmp (reg 12) (dreg 11);
      jl (Printf.sprintf "v1_%d" k);
      mov (reg 12) (dreg 11);
      lbl (Printf.sprintf "v1_%d" k);
      mov (reg 9) (dreg 5);
      mov (reg 11) (dreg 6);
    ]
  in
  let body =
    [ mov (imm 0) (dreg 5); mov (imm 0) (dreg 6) ]
    @ List.concat (List.init vit_steps step)
    @ [
        mov (reg 5) (dabs (out_at 0));
        mov (reg 6) (dabs (out_at 1));
      ]
  in
  {
    name = "Viterbi";
    description = "2-state Viterbi add-compare-select over 3 symbols";
    body;
    input_words = vit_steps;
    output_words = 2;
    gen_inputs = (fun ~seed -> varied_words ~seed vit_steps);
    reference =
      (fun ins ->
        let m0 = ref 0 and m1 = ref 0 in
        List.iter
          (fun r ->
            let bm = r land 0xF and bm' = lnot r land 0xF in
            let min_s a b = if s16 a < s16 b then a else b in
            let n0 = min_s (m16 (!m0 + bm)) (m16 (!m1 + bm')) in
            let n1 = min_s (m16 (!m0 + bm')) (m16 (!m1 + bm)) in
            m0 := n0;
            m1 := n1)
          ins;
        [ !m0; !m1 ]);
    loop_bound = vit_steps;
    max_paths = 256;
  }

(* --- PI: proportional-integral controller with clamping ------------- *)

let pi_n = 3
let pi_kp = 3
let pi_ki = 1
let pi_setpoint = 0x0800
let pi_max = 0x1FFF
let pi_min = 0

let b_pi =
  let step k =
    [
      (* error = setpoint - meas (meas masked to 12 bits, ADC-style) *)
      mov (abs (in_at k)) (dreg 7);
      and_ (imm 0x0FFF) (dreg 7);
      mov (imm pi_setpoint) (dreg 8);
      sub (reg 7) (dreg 8) (* error *);
      add (reg 8) (dreg 9) (* integral += error *);
      (* out = kp*error + ki*integral *)
      mov (imm pi_kp) (dabs Isa.Memmap.mpys);
      mov (reg 8) (dabs Isa.Memmap.op2);
      mul_reslo 10;
      mov (imm pi_ki) (dabs Isa.Memmap.mpys);
      mov (reg 9) (dabs Isa.Memmap.op2);
      mul_reslo 11;
      add (reg 11) (dreg 10);
      (* clamp to [pi_min, pi_max] *)
      cmp (imm pi_max) (dreg 10);
      jl (Printf.sprintf "pi_nothigh_%d" k);
      mov (imm pi_max) (dreg 10);
      jmp (Printf.sprintf "pi_done_%d" k);
      lbl (Printf.sprintf "pi_nothigh_%d" k);
      cmp (imm pi_min) (dreg 10);
      jge (Printf.sprintf "pi_done_%d" k);
      mov (imm pi_min) (dreg 10);
      lbl (Printf.sprintf "pi_done_%d" k);
      mov (reg 10) (dabs (out_at k));
    ]
  in
  let body =
    [ mov (imm 0) (dreg 9) ] @ List.concat (List.init pi_n step)
  in
  {
    name = "PI";
    description = "proportional-integral controller with output clamping";
    body;
    input_words = pi_n;
    output_words = pi_n;
    gen_inputs = (fun ~seed -> varied_words ~seed pi_n);
    reference =
      (fun ins ->
        let integral = ref 0 in
        List.map
          (fun meas ->
            let meas = meas land 0x0FFF in
            let error = m16 (pi_setpoint - meas) in
            integral := m16 (!integral + error);
            let p = m16 (s16 error * pi_kp) in
            let i = m16 (s16 !integral * pi_ki) in
            let out = m16 (p + i) in
            if s16 out >= s16 pi_max then pi_max
            else if s16 out < pi_min then pi_min
            else out)
          ins);
    loop_bound = pi_n;
    max_paths = 256;
  }

let all =
  [
    b_autocorr;
    b_binsearch;
    b_fft;
    b_intfilt;
    b_mult;
    b_pi;
    b_tea8;
    b_thold;
    b_div;
    b_insort;
    b_rle;
    b_intavg;
    b_conven;
    b_viterbi;
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Bench.find: unknown benchmark %s" name)

let measured_subset =
  [ "autoCorr"; "binSearch"; "FFT"; "intFilt"; "mult"; "PI"; "tea8"; "tHold" ]
