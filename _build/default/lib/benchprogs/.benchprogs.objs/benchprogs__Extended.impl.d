lib/benchprogs/extended.ml: Array Bench Isa List Printf Stdlib String
