lib/benchprogs/bench.ml: Array Asm Insn Isa List Memmap Printf String
