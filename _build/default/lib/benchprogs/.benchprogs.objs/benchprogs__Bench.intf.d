lib/benchprogs/bench.mli: Asm Insn Isa
