type signal = int
type bus = signal array

type ctx = {
  b : Netlist.Builder.t;
  mutable gnd_ : signal option;
  mutable vdd_ : signal option;
}

let create () = { b = Netlist.Builder.create (); gnd_ = None; vdd_ = None }
let builder ctx = ctx.b
let set_module ctx name = Netlist.Builder.set_module ctx.b name
let freeze ctx = Netlist.Builder.freeze ctx.b
let name_signal ctx name s = Netlist.Builder.name_net ctx.b name s

let name_bus ctx name b =
  Array.iteri
    (fun i s -> Netlist.Builder.name_net ctx.b (Printf.sprintf "%s[%d]" name i) s)
    b

let gnd ctx =
  match ctx.gnd_ with
  | Some s -> s
  | None ->
    let s = Netlist.Builder.add_const ctx.b Tri.Zero in
    ctx.gnd_ <- Some s;
    s

let vdd ctx =
  match ctx.vdd_ with
  | Some s -> s
  | None ->
    let s = Netlist.Builder.add_const ctx.b Tri.One in
    ctx.vdd_ <- Some s;
    s

let input ctx = Netlist.Builder.add_input ctx.b
let input_bus ctx w = Array.init w (fun _ -> input ctx)

let const ctx ~width n =
  Array.init width (fun i -> if (n lsr i) land 1 = 1 then vdd ctx else gnd ctx)

let g1 ctx cell a = Netlist.Builder.add_gate ctx.b cell [| a |]
let g2 ctx cell a b = Netlist.Builder.add_gate ctx.b cell [| a; b |]

(* Constant folding keeps the netlist lean without changing semantics. *)
let is_const ctx s = Some s = ctx.gnd_ || Some s = ctx.vdd_
let const_val ctx s = if Some s = ctx.vdd_ then true else false

let not_ ctx a =
  if is_const ctx a then (if const_val ctx a then gnd ctx else vdd ctx)
  else g1 ctx Netlist.Inv a

let and_ ctx a b =
  if is_const ctx a then (if const_val ctx a then b else gnd ctx)
  else if is_const ctx b then (if const_val ctx b then a else gnd ctx)
  else if a = b then a
  else g2 ctx Netlist.And2 a b

let or_ ctx a b =
  if is_const ctx a then (if const_val ctx a then vdd ctx else b)
  else if is_const ctx b then (if const_val ctx b then vdd ctx else a)
  else if a = b then a
  else g2 ctx Netlist.Or2 a b

let nand_ ctx a b =
  if is_const ctx a || is_const ctx b || a = b then not_ ctx (and_ ctx a b)
  else g2 ctx Netlist.Nand2 a b

let nor_ ctx a b =
  if is_const ctx a || is_const ctx b || a = b then not_ ctx (or_ ctx a b)
  else g2 ctx Netlist.Nor2 a b

let xor_ ctx a b =
  if is_const ctx a then (if const_val ctx a then not_ ctx b else b)
  else if is_const ctx b then (if const_val ctx b then not_ ctx a else a)
  else if a = b then gnd ctx
  else g2 ctx Netlist.Xor2 a b

let xnor_ ctx a b =
  if is_const ctx a || is_const ctx b || a = b then not_ ctx (xor_ ctx a b)
  else g2 ctx Netlist.Xnor2 a b

let mux ctx ~sel a b =
  if is_const ctx sel then (if const_val ctx sel then b else a)
  else if a = b then a
  else if is_const ctx a && is_const ctx b then
    (* a=0,b=1 -> sel; a=1,b=0 -> not sel *)
    if const_val ctx b then sel else not_ ctx sel
  else Netlist.Builder.add_gate ctx.b Netlist.Mux2 [| sel; a; b |]

let rec reduce ctx op = function
  | [] -> invalid_arg "Rtl.reduce: empty"
  | [ s ] -> s
  | l ->
    (* Balanced tree keeps logic depth (and glitch potential) low. *)
    let rec pair = function
      | [] -> []
      | [ s ] -> [ s ]
      | a :: b :: rest -> op ctx a b :: pair rest
    in
    reduce ctx op (pair l)

let and_many ctx l = reduce ctx and_ l
let or_many ctx l = reduce ctx or_ l

let width b = Array.length b
let slice b lo len = Array.sub b lo len
let concat parts = Array.concat parts
let repeat s n = Array.make n s
let zext ctx b w =
  if w < width b then invalid_arg "Rtl.zext";
  Array.append b (repeat (gnd ctx) (w - width b))

let sext _ctx b w =
  if w < width b then invalid_arg "Rtl.sext";
  Array.append b (repeat b.(width b - 1) (w - width b))

let check_same a b name = if width a <> width b then invalid_arg name

let bnot ctx a = Array.map (not_ ctx) a
let band ctx a b = check_same a b "Rtl.band"; Array.map2 (and_ ctx) a b
let bor ctx a b = check_same a b "Rtl.bor"; Array.map2 (or_ ctx) a b
let bxor ctx a b = check_same a b "Rtl.bxor"; Array.map2 (xor_ ctx) a b

let bmux ctx ~sel a b =
  check_same a b "Rtl.bmux";
  Array.map2 (fun x y -> mux ctx ~sel x y) a b

let mux_tree ctx sel cases =
  if Array.length cases = 0 then invalid_arg "Rtl.mux_tree: no cases";
  let n = 1 lsl width sel in
  let get i = if i < Array.length cases then cases.(i) else cases.(Array.length cases - 1) in
  let rec go bit lo count =
    if count = 1 then get lo
    else
      let half = count / 2 in
      let a = go (bit - 1) lo half and b = go (bit - 1) (lo + half) half in
      bmux ctx ~sel:sel.(bit) a b
  in
  go (width sel - 1) 0 n

let pmux ctx cases default =
  List.fold_right (fun (cond, b) acc -> bmux ctx ~sel:cond acc b) cases default

let decode ctx sel =
  let w = width sel in
  let n = 1 lsl w in
  Array.init n (fun i ->
      let terms =
        List.init w (fun bit ->
            if (i lsr bit) land 1 = 1 then sel.(bit) else not_ ctx sel.(bit))
      in
      and_many ctx terms)

let full_add ctx a b c =
  let axb = xor_ ctx a b in
  let s = xor_ ctx axb c in
  let co = or_ ctx (and_ ctx a b) (and_ ctx axb c) in
  (s, co)

let adder ctx a b ~cin =
  check_same a b "Rtl.adder";
  let w = width a in
  let sum = Array.make w (gnd ctx) in
  let c = ref cin in
  for i = 0 to w - 1 do
    let s, co = full_add ctx a.(i) b.(i) !c in
    sum.(i) <- s;
    c := co
  done;
  (sum, !c)

let add ctx a b = fst (adder ctx a b ~cin:(gnd ctx))
let sub ctx a b = fst (adder ctx a (bnot ctx b) ~cin:(vdd ctx))
let inc ctx a = fst (adder ctx a (const ctx ~width:(width a) 0) ~cin:(vdd ctx))
let neg ctx a = fst (adder ctx (const ctx ~width:(width a) 0) (bnot ctx a) ~cin:(vdd ctx))

let eq ctx a b =
  check_same a b "Rtl.eq";
  and_many ctx (Array.to_list (Array.map2 (xnor_ ctx) a b))

let eq_const ctx a n = eq ctx a (const ctx ~width:(width a) n)

let is_zero ctx a =
  not_ ctx (or_many ctx (Array.to_list a))

let lt_unsigned ctx a b =
  (* a < b iff subtraction a - b borrows, i.e. carry-out of a + ~b + 1 = 0 *)
  let _, cout = adder ctx a (bnot ctx b) ~cin:(vdd ctx) in
  not_ ctx cout

(* Two's-complement array multiplier: partial products are
   sign-extended to the full output width and the final one (the sign
   row, weight -2^(n-1)) is subtracted. *)
let mul_array_signed ctx a b =
  let n = width a in
  if width b <> n then invalid_arg "Rtl.mul_array_signed";
  let wout = 2 * n in
  let pp i =
    Array.init wout (fun j ->
        if j < i then gnd ctx
        else
          let k = j - i in
          let abit = if k < n then a.(k) else a.(n - 1) in
          and_ ctx abit b.(i))
  in
  let acc = ref (pp 0) in
  for i = 1 to n - 2 do
    acc := add ctx !acc (pp i)
  done;
  acc := sub ctx !acc (pp (n - 1));
  !acc

let mul_array ctx a b =
  let wa = width a and wb = width b in
  let wout = wa + wb in
  let acc = ref (const ctx ~width:wout 0) in
  for i = 0 to wb - 1 do
    let partial =
      Array.init wout (fun j ->
          if j < i || j - i >= wa then gnd ctx else and_ ctx a.(j - i) b.(i))
    in
    acc := add ctx !acc partial
  done;
  !acc

type reg = { bits : bus; mutable connected : bool; ctx_tag : ctx }

let reg ctx ~width:w =
  let bits = Array.init w (fun _ -> Netlist.Builder.add_dffe ctx.b) in
  { bits; connected = false; ctx_tag = ctx }

let q r = r.bits

(* Registers elaborate to enable-flops: the hold condition is carried on
   the enable pin rather than a mux back to the output, so the symbolic
   activity analysis can tell a held (stable) unknown from one that may
   be rewritten. Reset overrides enable. *)
let connect ctx r ?reset ?(reset_to = 0) ?enable d =
  if r.connected then invalid_arg "Rtl.connect: register already connected";
  if ctx != r.ctx_tag then invalid_arg "Rtl.connect: register from another ctx";
  if width d <> width r.bits then invalid_arg "Rtl.connect: width mismatch";
  r.connected <- true;
  let en = match enable with None -> vdd ctx | Some en -> en in
  let en, d =
    match reset with
    | None -> (en, d)
    | Some rst ->
      (or_ ctx rst en, bmux ctx ~sel:rst d (const ctx ~width:(width d) reset_to))
  in
  Array.iteri
    (fun i dff -> Netlist.Builder.set_dffe_inputs ctx.b dff ~en ~d:d.(i))
    r.bits
