(** Structural RTL builder.

    A thin typed layer over {!Netlist.Builder}: signals are net ids, buses
    are little-endian signal arrays, and every combinator elaborates
    directly to gates. This is the substitute for the Verilog + Design
    Compiler flow that produced the paper's openMSP430 netlist — the CPU
    in {!Cpu} is described with these combinators and ends up as a flat
    gate-level netlist with per-module attribution. *)

type ctx
type signal = int
type bus = signal array

val create : unit -> ctx
val builder : ctx -> Netlist.Builder.t

(** [set_module ctx name] tags subsequently created gates with [name]. *)
val set_module : ctx -> string -> unit

val freeze : ctx -> Netlist.t
val name_signal : ctx -> string -> signal -> unit

(** [name_bus ctx "pc" b] names each bit [pc\[i\]]. *)
val name_bus : ctx -> string -> bus -> unit

(** {1 Sources} *)

val gnd : ctx -> signal
val vdd : ctx -> signal
val input : ctx -> signal
val input_bus : ctx -> int -> bus
val const : ctx -> width:int -> int -> bus

(** {1 Single-bit logic} *)

val not_ : ctx -> signal -> signal
val and_ : ctx -> signal -> signal -> signal
val or_ : ctx -> signal -> signal -> signal
val nand_ : ctx -> signal -> signal -> signal
val nor_ : ctx -> signal -> signal -> signal
val xor_ : ctx -> signal -> signal -> signal
val xnor_ : ctx -> signal -> signal -> signal

(** [mux ctx ~sel a b] is [a] when [sel] is 0, [b] when 1. *)
val mux : ctx -> sel:signal -> signal -> signal -> signal

val and_many : ctx -> signal list -> signal
val or_many : ctx -> signal list -> signal

(** {1 Bus utilities} *)

val width : bus -> int

(** [slice b lo len] is bits [lo .. lo+len-1]. *)
val slice : bus -> int -> int -> bus

(** Least-significant part first. *)
val concat : bus list -> bus

val repeat : signal -> int -> bus
val zext : ctx -> bus -> int -> bus
val sext : ctx -> bus -> int -> bus

(** {1 Bus logic} *)

val bnot : ctx -> bus -> bus
val band : ctx -> bus -> bus -> bus
val bor : ctx -> bus -> bus -> bus
val bxor : ctx -> bus -> bus -> bus
val bmux : ctx -> sel:signal -> bus -> bus -> bus

(** [mux_tree ctx sel cases] selects [cases.(n)] where [n] is the value
    of the [sel] bus; [cases] is padded with its last element up to
    [2^width sel]. *)
val mux_tree : ctx -> bus -> bus array -> bus

(** [pmux ctx cases default] is a priority mux: the first case whose
    condition holds wins. *)
val pmux : ctx -> (signal * bus) list -> bus -> bus

(** [decode ctx sel] is the [2^w] one-hot decode of [sel]. *)
val decode : ctx -> bus -> signal array

(** {1 Arithmetic} *)

val adder : ctx -> bus -> bus -> cin:signal -> bus * signal
val add : ctx -> bus -> bus -> bus
val sub : ctx -> bus -> bus -> bus
val inc : ctx -> bus -> bus
val neg : ctx -> bus -> bus
val eq : ctx -> bus -> bus -> signal
val eq_const : ctx -> bus -> int -> signal
val is_zero : ctx -> bus -> signal
val lt_unsigned : ctx -> bus -> bus -> signal

(** Combinational array multiplier (unsigned); result has width
    [w a + w b]. *)
val mul_array : ctx -> bus -> bus -> bus

(** Two's-complement array multiplier; operands must have equal width
    [n], result has width [2n]. *)
val mul_array_signed : ctx -> bus -> bus -> bus

(** {1 State} *)

type reg

(** [reg ctx ~width] creates flip-flops with dangling data inputs; read
    the outputs with {!q} immediately, connect the next-state function
    later with {!connect}. *)
val reg : ctx -> width:int -> reg

val q : reg -> bus

(** [connect ctx r ?reset ?reset_to ?enable d]: when [reset] is high the
    register loads [reset_to] (default 0); otherwise when [enable]
    (default always) is high it loads [d], else it holds. *)
val connect :
  ctx -> reg -> ?reset:signal -> ?reset_to:int -> ?enable:signal -> bus -> unit
