(** Energy-harvester and battery sizing model (paper, Chapter 1 and
    Tables 5.1/5.2).

    Type 1 systems are sized by peak power (harvester area), Type 2 by
    peak energy (harvester) and both peak power and energy (battery),
    Type 3 by battery capacity/effective capacity. Tighter bounds on
    the processor's peak power/energy translate into roughly
    proportional reductions of the component sized by them, weighted by
    the processor's share of the system budget. *)

(** Table 1.1: battery specific energy [J/g] and energy density [MJ/L]. *)
module Battery : sig
  type t = {
    name : string;
    specific_energy : float;  (** J/g *)
    energy_density : float;  (** MJ/L *)
  }

  val all : t list
  val find : string -> t

  (** [volume_l t ~energy_j] — liters needed to store [energy_j]. *)
  val volume_l : t -> energy_j:float -> float
end

(** Table 1.2: harvester power density [W/cm^2]. *)
module Harvester : sig
  type t = { name : string; power_density : float (** W/cm^2 *) }

  val all : t list
  val find : string -> t

  (** [area_cm2 t ~power_w] — harvester area delivering [power_w]. *)
  val area_cm2 : t -> power_w:float -> float
end

(** Percentage reduction of a component sized by requirement [baseline]
    when the requirement tightens to [ours], with the processor
    contributing [fraction] of the system budget (Tables 5.1/5.2). *)
val reduction_pct : baseline:float -> ours:float -> fraction:float -> float

(** The paper's processor-contribution fractions: 10/25/50/75/90/100%. *)
val fractions : float list

(** Worked example of Figure 1.2's sensor node: harvester area 32.6 cm^2
    and battery volume 6.95 mm^3; returns (area saved cm^2, volume saved
    mm^3) at 100% contribution. *)
val sensor_node_savings :
  baseline_peak:float -> x_peak:float -> baseline_energy:float -> x_energy:float
  -> float * float
