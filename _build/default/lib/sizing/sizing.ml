module Battery = struct
  type t = { name : string; specific_energy : float; energy_density : float }

  (* Table 1.1 *)
  let all =
    [
      { name = "Li-ion"; specific_energy = 460.; energy_density = 1.152 };
      { name = "Alkaline"; specific_energy = 400.; energy_density = 0.331 };
      { name = "Carbon-zinc"; specific_energy = 130.; energy_density = 1.080 };
      { name = "Ni-MH"; specific_energy = 340.; energy_density = 0.504 };
      { name = "Ni-cad"; specific_energy = 140.; energy_density = 0.828 };
      { name = "Lead-acid"; specific_energy = 146.; energy_density = 0.360 };
    ]

  let find name =
    match List.find_opt (fun b -> String.equal b.name name) all with
    | Some b -> b
    | None -> invalid_arg ("Sizing.Battery.find: " ^ name)

  let volume_l t ~energy_j = energy_j /. (t.energy_density *. 1e6)
end

module Harvester = struct
  type t = { name : string; power_density : float }

  (* Table 1.2, converted to W/cm^2 *)
  let all =
    [
      { name = "Photovoltaic (sun)"; power_density = 100e-3 };
      { name = "Photovoltaic (indoor)"; power_density = 100e-6 };
      { name = "Thermoelectric"; power_density = 60e-6 };
      { name = "Ambient airflow"; power_density = 1e-3 };
    ]

  let find name =
    match List.find_opt (fun h -> String.equal h.name name) all with
    | Some h -> h
    | None -> invalid_arg ("Sizing.Harvester.find: " ^ name)

  let area_cm2 t ~power_w = power_w /. t.power_density
end

(* The component scales with the system requirement; the processor
   contributes [fraction] of it, so tightening the processor's bound
   from [baseline] to [ours] shrinks the component by
   fraction * (1 - ours/baseline). *)
let reduction_pct ~baseline ~ours ~fraction =
  if baseline <= 0. then 0.
  else 100. *. fraction *. (1. -. (ours /. baseline))

let fractions = [ 0.10; 0.25; 0.50; 0.75; 0.90; 1.00 ]

let sensor_node_savings ~baseline_peak ~x_peak ~baseline_energy ~x_energy =
  let harvester_area = 32.6 (* cm^2, eZ430-RF2500-SEH solar cell *) in
  let battery_volume = 6.95 (* mm^3, thin-film cell *) in
  let area_saved =
    harvester_area *. reduction_pct ~baseline:baseline_peak ~ours:x_peak ~fraction:1.0
    /. 100.
  in
  let volume_saved =
    battery_volume
    *. reduction_pct ~baseline:baseline_energy ~ours:x_energy ~fraction:1.0
    /. 100.
  in
  (area_saved, volume_saved)
