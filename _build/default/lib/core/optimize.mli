(** Peak-power software optimizations (paper, Sections 3.5 and 5.1).

    Three assembly-level rewrites that spread or delay the activity of
    a peak cycle; each preserves functionality (checked on the ISS with
    {!verify}) and is only worth keeping if re-analysis shows a lower
    bound — see {!Report.Optrun} for the greedy driver. *)

type opt =
  | Opt1_indexed_loads
      (** split register-indexed / absolute loads: compute the address
          into a scratch register, then load register-indirect *)
  | Opt2_pop
      (** split POP into [MOV @SP, dst] + [ADD #2, SP] (bus activity
          and the stack-pointer incrementer no longer coincide) *)
  | Opt3_mult_nop
      (** insert a NOP after the OP2 store so the multiplier array's
          high-power cycle overlaps an idle cycle *)

val all_opts : opt list
val name : opt -> string

(** [apply opt ~scratch items] rewrites all matching sites; returns the
    new item list and the number of sites rewritten. [scratch] must be
    a register the program never touches (benchmarks reserve r13). *)
val apply : opt -> scratch:int -> Isa.Asm.item list -> Isa.Asm.item list * int

(** [verify ~assemble ~inputs ~outputs original transformed] — run both
    programs on the ISS with the same [inputs] and compare the
    [outputs] regions ([(address, words)] each). The transforms insert
    flag-clobbering instructions, so this check is mandatory before
    adopting a rewrite. *)
val verify :
  assemble:(Isa.Asm.item list -> Isa.Asm.image) ->
  inputs:(int * int list) list ->
  outputs:(int * int) list ->
  Isa.Asm.item list ->
  Isa.Asm.item list ->
  bool
