(** Multi-program, self-modifying-code and interrupt handling (paper,
    Chapter 6). *)

(** Union-of-activity bound: every gate active anywhere in any of the
    applications is charged its costliest transition in a single
    synthetic cycle. Conservative: at least as large as every
    application's own peak bound. *)
val union_peak_bound : Poweran.t -> Gatesim.Trace.tree list -> float

(** One application at a time (cooperative multi-programming, dynamic
    linking, self-modifying code): the worst of the individual bounds. *)
val max_peak : Analyze.t list -> float

val max_npe : Analyze.t list -> float

type with_isr = {
  peak_power : float;  (** max of main-flow and ISR peaks + detection *)
  peak_energy : float;  (** main flow plus bounded ISR invocations *)
}

(** [combine_isr ~main ~isr ~max_invocations ~detection_power] — the
    ISR is analyzed like any application; asynchronous detection logic
    adds a constant power offset; the energy bound admits up to
    [max_invocations] ISR executions. *)
val combine_isr :
  main:Analyze.t ->
  isr:Analyze.t ->
  max_invocations:int ->
  detection_power:float ->
  with_isr
