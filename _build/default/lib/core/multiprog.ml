(* Multi-program, self-modifying-code and interrupt handling (paper,
   Chapter 6).

   - In a multi-programmed setting the conservative peak is derived
     from the union of the applications' toggle activities.
   - For self-modifying code, the processor's requirement is the peak
     of the code version with the highest peak.
   - Interrupt service routines are regular routines analyzed with the
     rest of the code; the asynchronous detection cost is an additive
     offset, and the ISR's energy is charged once per permitted
     invocation. *)

(* Union-of-activity bound: every gate that can be active in any of the
   applications is assumed to take its costliest transition in the same
   cycle. At least as large as each application's own peak bound. *)
let union_peak_bound pa (trees : Gatesim.Trace.tree list) =
  let nl = Poweran.netlist pa in
  let active = Hashtbl.create 4096 in
  List.iter
    (fun tree ->
      Gatesim.Trace.iter_segments tree (fun seg ->
          Array.iter
            (fun (cy : Gatesim.Trace.cycle) ->
              Array.iter
                (fun d ->
                  let net, _, _ = Gatesim.Trace.unpack d in
                  Hashtbl.replace active net ())
                cy.Gatesim.Trace.deltas;
              Array.iter
                (fun net -> Hashtbl.replace active net ())
                cy.Gatesim.Trace.x_active)
            seg))
    trees;
  let synth_deltas = ref [] in
  Hashtbl.iter
    (fun net () ->
      synth_deltas := Gatesim.Trace.pack ~net ~old_v:2 ~new_v:2 :: !synth_deltas)
    active;
  ignore nl;
  let cy =
    {
      Gatesim.Trace.deltas = [||];
      x_active = Array.of_list (Hashtbl.fold (fun n () acc -> n :: acc) active []);
      pc = Tri.Word.all_x ~width:16;
      state = Tri.Word.all_x ~width:16;
      ir = Tri.Word.all_x ~width:16;
    }
  in
  Poweran.cycle_power_max pa cy

(* One application at a time (cooperative multi-programming, dynamic
   linking, or self-modifying code): the requirement is the worst of
   the individual bounds. *)
let max_peak (analyses : Analyze.t list) =
  List.fold_left (fun acc a -> Float.max acc a.Analyze.peak_power) 0. analyses

let max_npe (analyses : Analyze.t list) =
  List.fold_left
    (fun acc a -> Float.max acc a.Analyze.peak_energy.Peak_energy.npe)
    0. analyses

type with_isr = {
  peak_power : float;  (** max of main-flow and ISR peaks, plus detection *)
  peak_energy : float;  (** main flow plus bounded ISR invocations *)
}

(* [combine_isr ~main ~isr ~max_invocations ~detection_power]: the ISR
   is a regular routine analyzed like any application; interrupt
   detection logic contributes a constant power offset; the energy
   bound admits up to [max_invocations] executions of the ISR. *)
let combine_isr ~main ~isr ~max_invocations ~detection_power =
  {
    peak_power =
      Float.max main.Analyze.peak_power isr.Analyze.peak_power
      +. detection_power;
    peak_energy =
      main.Analyze.peak_energy.Peak_energy.energy
      +. (float_of_int max_invocations
         *. isr.Analyze.peak_energy.Peak_energy.energy);
  }
