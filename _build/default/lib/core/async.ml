type result = {
  peak_power : float;
  npe : float;
  cycles_simulated : int;
  saturated : bool;
}

let analyze pa ~ports ~cycles =
  let nl = Poweran.netlist pa in
  (* a dummy memory: asynchronous machines analyzed here have no
     external memory port traffic (strobes should be tied to consts) *)
  let mem =
    Gatesim.Mem.create ~rom:[ (0xFFFE, 0) ] ~ram_base:0x200 ~ram_bytes:64
  in
  let e = Gatesim.Engine.create nl ~ports ~mem in
  (* brief reset, then all-X inputs *)
  Gatesim.Engine.set_reset e Tri.One;
  ignore (Gatesim.Engine.step e);
  ignore (Gatesim.Engine.step e);
  Gatesim.Engine.set_reset e Tri.Zero;
  if Array.length ports.Gatesim.Engine.port_in > 0 then
    Gatesim.Engine.set_port_in e
      (Array.make (Array.length ports.Gatesim.Engine.port_in) Tri.X);
  let peak = ref 0. in
  let energy = ref 0. in
  let last_change = ref 0 in
  let n = ref 0 in
  while !n < cycles && !n - !last_change < 64 do
    let cy = Gatesim.Engine.step e in
    let p = Poweran.cycle_power_max pa cy in
    energy := !energy +. (p *. Poweran.period pa);
    if p > !peak then begin
      peak := p;
      last_change := !n
    end;
    incr n
  done;
  {
    peak_power = !peak;
    npe = !energy /. float_of_int (max 1 !n);
    cycles_simulated = !n;
    saturated = !n < cycles;
  }

let add_to ~cpu_bound ~peripherals =
  List.fold_left (fun acc r -> acc +. r.peak_power) cpu_bound peripherals
