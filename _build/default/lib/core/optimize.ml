(* Peak-power software optimizations (paper, Sections 3.5 and 5.1).

   Three assembly-level transforms, each spreading or delaying the
   activity of a peak cycle:

   - OPT1 (register-indexed and absolute loads): a load that computes
     its address as an offset lights up the address generator in the
     same cycle as the memory read. Computing the address into a
     scratch register first and loading via register-indirect mode
     spreads that activity over several cycles.
   - OPT2 (POP): MOV @SP+, dst drives the data/address buses and the
     stack-pointer incrementer simultaneously; splitting into
     MOV @SP, dst then ADD #2, SP separates them.
   - OPT3 (multiplier): the multiplier array computes in the cycles
     after OP2 is written, overlapping the next instruction's fetch and
     operand activity. A NOP after the OP2 store makes the overlap land
     on idle cycles.

   Transforms can change the status register (OPT1/OPT2 insert an ADD),
   so [verify] replays the program on the ISS and compares the output
   region — only functionally equivalent rewrites are kept. *)

type opt = Opt1_indexed_loads | Opt2_pop | Opt3_mult_nop

let all_opts = [ Opt1_indexed_loads; Opt2_pop; Opt3_mult_nop ]

let name = function
  | Opt1_indexed_loads -> "OPT1 (split indexed loads)"
  | Opt2_pop -> "OPT2 (split POP)"
  | Opt3_mult_nop -> "OPT3 (NOP after multiplier start)"

let is_op2_store (it : Isa.Asm.item) =
  match it with
  | Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, _, Isa.Insn.D_abs v)) -> (
    match v with
    | Isa.Insn.Lit a -> a = Isa.Memmap.op2
    | Isa.Insn.Sym _ | Isa.Insn.Sym_off _ -> false)
  | _ -> false

(* Apply one transform; returns the rewritten items and how many sites
   were rewritten. [scratch] must be a register the program never
   reads or writes (benchmarks reserve r13 for this). *)
let apply opt ~scratch items =
  let count = ref 0 in
  let rewrite (it : Isa.Asm.item) =
    match opt, it with
    | ( Opt1_indexed_loads,
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_idx (v, rs), Isa.Insn.D_reg rd)) )
      when rd <> rs && rs <> scratch && rd <> scratch ->
      incr count;
      [
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_reg rs, Isa.Insn.D_reg scratch));
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.ADD, Isa.Insn.S_imm v, Isa.Insn.D_reg scratch));
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_ind scratch, Isa.Insn.D_reg rd));
      ]
    | ( Opt1_indexed_loads,
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_abs v, Isa.Insn.D_reg rd)) )
      when rd <> scratch ->
      incr count;
      [
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_imm v, Isa.Insn.D_reg scratch));
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_ind scratch, Isa.Insn.D_reg rd));
      ]
    | ( Opt2_pop,
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_ind_inc 1, Isa.Insn.D_reg rd)) )
      when rd <> 1 && rd <> 0 ->
      incr count;
      [
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_ind 1, Isa.Insn.D_reg rd));
        Isa.Asm.I (Isa.Insn.I1 (Isa.Insn.ADD, Isa.Insn.S_imm (Isa.Insn.Lit 2), Isa.Insn.D_reg 1));
      ]
    | Opt3_mult_nop, it when is_op2_store it ->
      incr count;
      [ it; Isa.Asm.I Isa.Insn.nop ]
    | _, it -> [ it ]
  in
  let out = List.concat_map rewrite items in
  (out, !count)

(* Functional equivalence on the ISS: run both programs with the same
   concrete inputs and compare the output region and halt state. *)
let verify ~assemble ~inputs ~outputs original transformed =
  let run items =
    let img = assemble items in
    let t = Isa.Iss.create img in
    List.iter (fun (addr, ws) -> Isa.Iss.load_ram t ~addr ws) inputs;
    Isa.Iss.run t;
    List.map
      (fun (addr, len) ->
        List.init len (fun k -> Isa.Iss.read_word t (addr + (2 * k))))
      outputs
  in
  run original = run transformed
