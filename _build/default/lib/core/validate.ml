(* Validation of the X-based analysis (paper, Section 3.4).

   Two checks: (1) the set of gates marked potentially-toggled by
   symbolic simulation is a superset of the gates toggled by any
   input-based execution (Figure 3.4); (2) the X-based peak power trace
   upper-bounds every input-based power trace (Figure 3.5). *)

type toggle_sets = {
  sym_only : int list;  (** potentially-toggled, never seen concrete *)
  common : int list;
  concrete_only : int list;  (** must be empty for soundness *)
}

let net_set_of_tree tree =
  let set = Hashtbl.create 4096 in
  Gatesim.Trace.iter_segments tree (fun seg ->
      Array.iter
        (fun (cy : Gatesim.Trace.cycle) ->
          Array.iter
            (fun d ->
              let net, _, _ = Gatesim.Trace.unpack d in
              Hashtbl.replace set net ())
            cy.Gatesim.Trace.deltas;
          Array.iter (fun n -> Hashtbl.replace set n ()) cy.Gatesim.Trace.x_active)
        seg);
  set

let net_set_of_run cycles =
  let set = Hashtbl.create 4096 in
  Array.iter
    (fun (cy : Gatesim.Trace.cycle) ->
      Array.iter
        (fun d ->
          let net, _, _ = Gatesim.Trace.unpack d in
          Hashtbl.replace set net ())
        cy.Gatesim.Trace.deltas)
    cycles;
  set

let compare_toggles ~tree ~concrete =
  let sym = net_set_of_tree tree in
  let conc = net_set_of_run concrete in
  let sym_only = ref [] and common = ref [] and concrete_only = ref [] in
  Hashtbl.iter
    (fun n () ->
      if Hashtbl.mem conc n then common := n :: !common
      else sym_only := n :: !sym_only)
    sym;
  Hashtbl.iter
    (fun n () -> if not (Hashtbl.mem sym n) then concrete_only := n :: !concrete_only)
    conc;
  {
    sym_only = List.sort compare !sym_only;
    common = List.sort compare !common;
    concrete_only = List.sort compare !concrete_only;
  }

(* Per-module counts for the Figure 3.4 rendering. *)
let by_module nl nets =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let m = Netlist.module_of nl n in
      Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
    nets;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type bound_check = {
  cycles_checked : int;
  violations : (int * float * float) list;  (** cycle, bound, observed *)
  max_ratio : float;  (** max observed/bound — must be <= 1 *)
  sym_peak : float;
  concrete_peak : float;
}

(* Find the root-to-leaf path of the tree matching a concrete run (same
   length, PCs refine), and check the per-cycle bound pointwise. *)
let check_bound pa ~tree ~concrete =
  let conc_trace = Poweran.trace_power pa ~mode:`Observed concrete in
  let matching = ref None in
  Gatesim.Trace.iter_paths tree (fun segs terminal ->
      match terminal with
      | `Seen _ -> ()
      | `End ->
        if !matching = None then begin
          let path = Array.concat segs in
          if Array.length path = Array.length concrete then begin
            let ok = ref true in
            Array.iteri
              (fun k (cy : Gatesim.Trace.cycle) ->
                match
                  ( Tri.Word.to_int cy.Gatesim.Trace.pc,
                    Tri.Word.to_int concrete.(k).Gatesim.Trace.pc )
                with
                | Some a, Some b when a <> b -> ok := false
                | _ -> ())
              path;
            if !ok then matching := Some path
          end
        end);
  match !matching with
  | None -> None
  | Some path ->
    let bound_trace = Poweran.trace_power pa ~mode:`Max path in
    let violations = ref [] and ratio = ref 0. in
    Array.iteri
      (fun k b ->
        let o = conc_trace.(k) in
        if o > b +. 1e-15 then violations := (k, b, o) :: !violations;
        if o /. b > !ratio then ratio := o /. b)
      bound_trace;
    Some
      {
        cycles_checked = Array.length path;
        violations = List.rev !violations;
        max_ratio = !ratio;
        sym_peak = fst (Poweran.peak_of bound_trace);
        concrete_peak = fst (Poweran.peak_of conc_trace);
      }
