(** Validation of the X-based analysis (paper, Section 3.4).

    Check 1 (Figure 3.4): the gates marked potentially-toggled by
    symbolic simulation are a superset of the gates toggled by any
    input-based execution. Check 2 (Figure 3.5): the X-based per-cycle
    power trace upper-bounds every input-based trace pointwise. *)

type toggle_sets = {
  sym_only : int list;  (** potentially-toggled, not seen in this run *)
  common : int list;
  concrete_only : int list;  (** must be empty, or the analysis is unsound *)
}

val net_set_of_tree : Gatesim.Trace.tree -> (int, unit) Hashtbl.t
val net_set_of_run : Gatesim.Trace.cycle array -> (int, unit) Hashtbl.t

val compare_toggles :
  tree:Gatesim.Trace.tree -> concrete:Gatesim.Trace.cycle array -> toggle_sets

(** Per-module counts for the Figure 3.4 rendering. *)
val by_module : Netlist.t -> int list -> (string * int) list

type bound_check = {
  cycles_checked : int;
  violations : (int * float * float) list;  (** cycle, bound, observed *)
  max_ratio : float;  (** max observed/bound — must be <= 1 *)
  sym_peak : float;
  concrete_peak : float;
}

(** [check_bound pa ~tree ~concrete] locates the tree path matching the
    concrete run (same length, agreeing PCs) and compares the traces
    pointwise; [None] if no path matches (e.g. the run ended at a
    deduplicated state). *)
val check_bound :
  Poweran.t ->
  tree:Gatesim.Trace.tree ->
  concrete:Gatesim.Trace.cycle array ->
  bound_check option
