lib/core/evenodd.ml: Array Bytes Char Gatesim List Netlist Poweran Printf Stdcell Tri Vcd
