lib/core/optimize.ml: Isa List
