lib/core/coi.ml: Array Cpu Float Format Gatesim Hashtbl Isa List Option Poweran Printf Tri
