lib/core/peak_energy.ml: Array Gatesim Hashtbl Map Poweran String
