lib/core/multiprog.mli: Analyze Gatesim Poweran
