lib/core/evenodd.mli: Bytes Gatesim Netlist Poweran Stdcell
