lib/core/optimize.mli: Isa
