lib/core/peak_power.ml: Gatesim Poweran
