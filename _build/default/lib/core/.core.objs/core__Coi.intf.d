lib/core/coi.mli: Format Gatesim Isa Poweran
