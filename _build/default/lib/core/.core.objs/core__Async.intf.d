lib/core/async.mli: Gatesim Poweran
