lib/core/validate.mli: Gatesim Hashtbl Netlist Poweran
