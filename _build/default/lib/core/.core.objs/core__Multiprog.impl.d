lib/core/multiprog.ml: Analyze Array Float Gatesim Hashtbl List Peak_energy Poweran Tri
