lib/core/validate.ml: Array Gatesim Hashtbl List Netlist Option Poweran String Tri
