lib/core/analyze.mli: Coi Cpu Gatesim Isa Peak_energy Poweran Stdcell
