lib/core/analyze.ml: Array Coi Cpu Gatesim Isa List Peak_energy Peak_power Poweran Stdcell Tri
