lib/core/async.ml: Array Gatesim List Poweran Tri
