lib/core/peak_energy.mli: Gatesim Poweran
