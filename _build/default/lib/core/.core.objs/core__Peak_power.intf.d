lib/core/peak_power.mli: Gatesim Poweran
