(** Asynchronous state machines (paper, Chapter 6).

    Peripherals that run asynchronously to the CPU (ADCs, DACs, bus
    controllers) cannot be folded into the processor's execution tree;
    the paper's prescription is to analyze the peripheral's netlist
    separately — with every input unknown — and add its worst-case
    power to the processor's bound at every instant. Such machines are
    much smaller than the processor, so the addition is not overly
    conservative.

    This reuses the generic simulation and power layers on an arbitrary
    netlist: nothing here is CPU-specific. *)

type result = {
  peak_power : float;  (** W: worst per-cycle bound with all-X inputs *)
  npe : float;  (** J/cycle at the same bound (for energy budgets) *)
  cycles_simulated : int;
  saturated : bool;
      (** the per-cycle bound stopped changing before the budget ran out *)
}

(** [analyze pa ~ports ~cycles] — drive every input of the netlist with
    X and record the per-cycle maximized power until it saturates (or
    for [cycles] cycles). [ports] only needs valid [reset]/strobe
    bindings; probe buses may be tied off. *)
val analyze : Poweran.t -> ports:Gatesim.Engine.ports -> cycles:int -> result

(** [add_to ~cpu_bound ~peripherals] — a system bound per the paper:
    the processor's peak plus every asynchronous machine's worst-case
    power. *)
val add_to : cpu_bound:float -> peripherals:result list -> float
