let cell_models =
  {|// Behavioral cell models for the xbound gate library.
module X_BUF(input a, output y);   assign y = a;      endmodule
module X_INV(input a, output y);   assign y = ~a;     endmodule
module X_AND2(input a, b, output y);  assign y = a & b;   endmodule
module X_OR2(input a, b, output y);   assign y = a | b;   endmodule
module X_NAND2(input a, b, output y); assign y = ~(a & b); endmodule
module X_NOR2(input a, b, output y);  assign y = ~(a | b); endmodule
module X_XOR2(input a, b, output y);  assign y = a ^ b;   endmodule
module X_XNOR2(input a, b, output y); assign y = ~(a ^ b); endmodule
module X_MUX2(input s, a, b, output y); assign y = s ? b : a; endmodule
module X_DFF(input clk, d, output reg q);
  always @(posedge clk) q <= d;
endmodule
module X_DFFE(input clk, en, d, output reg q);
  always @(posedge clk) if (en) q <= d;
endmodule
|}

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      then c
      else '_')
    name

let module_text ?(name = "xbound_core") (nl : Netlist.t) =
  let buf = Buffer.create (64 * Netlist.gate_count nl) in
  let net id = Printf.sprintf "n%d" id in
  let inputs = Array.to_list nl.Netlist.inputs in
  let outputs =
    List.filter (fun (_, id) -> id >= 0) nl.Netlist.net_names
    |> List.sort_uniq compare
  in
  Buffer.add_string buf (Printf.sprintf "module %s (\n  input clk" name);
  List.iter (fun id -> Buffer.add_string buf (Printf.sprintf ",\n  input %s" (net id))) inputs;
  List.iter
    (fun (nm, _) ->
      Buffer.add_string buf (Printf.sprintf ",\n  output %s" (sanitize nm)))
    outputs;
  Buffer.add_string buf "\n);\n";
  (* wires *)
  Array.iter
    (fun (g : Netlist.gate) ->
      match g.Netlist.cell with
      | Netlist.Input -> ()
      | _ -> Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net g.Netlist.id)))
    nl.Netlist.gates;
  (* gates *)
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let f k = net g.Netlist.fanins.(k) in
      let inst cell args =
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s, %s); // %s\n" cell id
             (String.concat ", " args) (net id)
             nl.Netlist.module_names.(g.Netlist.module_id))
      in
      match g.Netlist.cell with
      | Netlist.Input -> ()
      | Netlist.Const Tri.Zero ->
        Buffer.add_string buf (Printf.sprintf "  assign %s = 1'b0;\n" (net id))
      | Netlist.Const Tri.One ->
        Buffer.add_string buf (Printf.sprintf "  assign %s = 1'b1;\n" (net id))
      | Netlist.Const Tri.X ->
        Buffer.add_string buf (Printf.sprintf "  assign %s = 1'bx;\n" (net id))
      | Netlist.Buf -> inst "X_BUF" [ f 0 ]
      | Netlist.Inv -> inst "X_INV" [ f 0 ]
      | Netlist.And2 -> inst "X_AND2" [ f 0; f 1 ]
      | Netlist.Or2 -> inst "X_OR2" [ f 0; f 1 ]
      | Netlist.Nand2 -> inst "X_NAND2" [ f 0; f 1 ]
      | Netlist.Nor2 -> inst "X_NOR2" [ f 0; f 1 ]
      | Netlist.Xor2 -> inst "X_XOR2" [ f 0; f 1 ]
      | Netlist.Xnor2 -> inst "X_XNOR2" [ f 0; f 1 ]
      | Netlist.Mux2 -> inst "X_MUX2" [ f 0; f 1; f 2 ]
      | Netlist.Dff -> inst "X_DFF" [ "clk"; f 0 ]
      | Netlist.Dffe -> inst "X_DFFE" [ "clk"; f 0; f 1 ])
    nl.Netlist.gates;
  (* probe aliases *)
  List.iter
    (fun (nm, id) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize nm) (net id)))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let file_text ?name nl = cell_models ^ "\n" ^ module_text ?name nl
