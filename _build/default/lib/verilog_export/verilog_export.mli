(** Structural Verilog export.

    Dumps a {!Netlist.t} as a flat gate-level Verilog module over a
    small cell library (INV/BUF/AND2/.../MUX2/DFF/DFFE behavioral
    models included), so the processor netlist can be inspected or
    simulated with standard EDA tooling. Net [n] is emitted as
    [n<id>]; named probe nets get Verilog aliases. *)

(** [module_text ?name nl] is the gate-level module source. Primary
    inputs become module inputs (plus [clk]); named nets become output
    ports. *)
val module_text : ?name:string -> Netlist.t -> string

(** Behavioral models for the cells used by {!module_text}; prepend to
    the module for a self-contained file. *)
val cell_models : string

(** [file_text ?name nl] = models + module. *)
val file_text : ?name:string -> Netlist.t -> string
