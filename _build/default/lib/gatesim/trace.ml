type cycle = {
  deltas : int array;
  x_active : int array;
  pc : Tri.Word.t;
  state : Tri.Word.t;
  ir : Tri.Word.t;
}

(* Packed delta: bits [4..] net id, bits [2..3] old trit, bits [0..1]
   new trit. *)
let pack ~net ~old_v ~new_v = (net lsl 4) lor (old_v lsl 2) lor new_v
let unpack p = (p lsr 4, (p lsr 2) land 3, p land 3)

let activity c = Array.length c.deltas + Array.length c.x_active

type node =
  | Run of { cycles : cycle array; next : node }
  | Fork of { not_taken : node; taken : node }
  | End_path
  | Seen of string

type tree = {
  root : node;
  registry : (string, node ref) Hashtbl.t;
  initial : int array;
}

let iter_segments tree f =
  let rec go = function
    | Run { cycles; next } ->
      f cycles;
      go next
    | Fork { not_taken; taken } ->
      go not_taken;
      go taken
    | End_path | Seen _ -> ()
  in
  go tree.root

let flatten tree =
  let acc = ref [] in
  iter_segments tree (fun seg -> acc := seg :: !acc);
  Array.concat (List.rev !acc)

let iter_paths tree f =
  let rec go prefix = function
    | Run { cycles; next } -> go (cycles :: prefix) next
    | Fork { not_taken; taken } ->
      go prefix not_taken;
      go prefix taken
    | End_path -> f (List.rev prefix) `End
    | Seen d -> f (List.rev prefix) (`Seen d)
  in
  go [] tree.root

let count_cycles tree =
  let n = ref 0 in
  iter_segments tree (fun seg -> n := !n + Array.length seg);
  !n

let count_paths tree =
  let n = ref 0 in
  iter_paths tree (fun _ _ -> incr n);
  !n
