(** Activity traces and the symbolic execution tree.

    Each simulated cycle is summarized by the set of nets that changed
    value (with old/new trits) and the set of nets that are {e active}
    without a visible change (X-valued and driven by an active gate —
    the paper's conservative activity rule). Probe buses (PC, FSM state,
    instruction register) are sampled per cycle for end-of-application
    detection and COI reporting. *)

type cycle = {
  deltas : int array;  (** packed net/old/new, see {!pack} *)
  x_active : int array;  (** nets active with an X->X "transition" *)
  pc : Tri.Word.t;
  state : Tri.Word.t;
  ir : Tri.Word.t;
}

val pack : net:int -> old_v:int -> new_v:int -> int
val unpack : int -> int * int * int

(** Number of active nets in the cycle (changed + X-active). *)
val activity : cycle -> int

(** {1 Execution tree}

    [Run] is a straight-line stretch of cycles. [Fork] is an
    input-dependent branch (an X reached the branch-decision net); the
    forked cycle itself is the first cycle of each child. [Seen] is a
    dedup edge to a previously explored architectural state, keyed by
    digest (Algorithm 1, line 19). *)

type node =
  | Run of { cycles : cycle array; next : node }
  | Fork of { not_taken : node; taken : node }
  | End_path
  | Seen of string

type tree = {
  root : node;
  registry : (string, node ref) Hashtbl.t;
      (** digest -> continuation explored from that state *)
  initial : int array;  (** net values (trit codes) at cycle 0 *)
}

(** Fold over every straight-line segment in DFS order ([Seen] edges are
    not followed). *)
val iter_segments : tree -> (cycle array -> unit) -> unit

(** All cycles of all segments in DFS order — the "flattened execution
    trace" of Algorithm 2. *)
val flatten : tree -> cycle array

(** Root-to-leaf paths (each a list of segments); [Seen] leaves are
    reported with their digest. Used by peak-energy analysis. *)
val iter_paths : tree -> (cycle array list -> [ `End | `Seen of string ] -> unit) -> unit

val count_cycles : tree -> int
val count_paths : tree -> int
