lib/gatesim/mem.mli: Tri
