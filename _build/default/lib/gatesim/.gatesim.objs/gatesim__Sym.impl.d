lib/gatesim/sym.ml: Array Engine Hashtbl List Option Printf Trace Tri
