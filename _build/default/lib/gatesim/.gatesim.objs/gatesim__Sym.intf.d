lib/gatesim/sym.mli: Engine Trace
