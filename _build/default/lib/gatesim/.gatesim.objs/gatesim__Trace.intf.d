lib/gatesim/trace.mli: Hashtbl Tri
