lib/gatesim/mem.ml: Array Buffer Digest Hashtbl Int32 List Printf Tri
