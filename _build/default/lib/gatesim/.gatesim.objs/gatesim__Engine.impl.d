lib/gatesim/engine.ml: Array Buffer Bytes Char Digest List Mem Netlist Trace Tri
