lib/gatesim/engine.mli: Mem Netlist Trace Tri
