lib/gatesim/trace.ml: Array Hashtbl List Tri
