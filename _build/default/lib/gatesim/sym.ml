type config = {
  is_end : Trace.cycle -> bool;
  max_cycles_per_path : int;
  max_paths : int;
  revisit_limit : int;
}

let default_config ~is_end =
  { is_end; max_cycles_per_path = 20_000; max_paths = 4_096; revisit_limit = 0 }

type stats = {
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
}

exception Path_limit of string

let reset_cycles = 2

(* Hold reset, then step through the RESET and VECTOR states so the
   recorded trace starts at the application's first fetch — the
   one-time power-on transient is a system event, not part of the
   application's power profile. *)
let do_reset e =
  Engine.set_reset e Tri.One;
  for _ = 1 to reset_cycles do
    ignore (Engine.step e : Trace.cycle)
  done;
  Engine.set_reset e Tri.Zero;
  (* RESET state, VECTOR fetch, and the first instruction fetch (whose
     IR transition from the unknown power-on value is likewise part of
     the start-up transient, not steady-state application behaviour). *)
  for _ = 1 to 3 do
    ignore (Engine.step e : Trace.cycle)
  done

let run e config =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run: engine not fresh";
  do_reset e;
  (* Initial vector for trace replay: the net values at the end of reset,
     i.e. the previous-cycle baseline of the first recorded cycle. *)
  let initial = Engine.values_snapshot e in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let registry : (string, Trace.node ref) Hashtbl.t = Hashtbl.create 256 in
  let paths = ref 0 and forks = ref 0 and dedup_hits = ref 0 in
  let total_cycles = ref 0 in
  let end_of_path () =
    incr paths;
    if !paths > config.max_paths then
      raise (Path_limit (Printf.sprintf "more than %d paths" config.max_paths))
  in
  (* Explore from the current engine state. [acc] is the reversed list of
     cycles of the current straight-line segment; [len] the path length
     so far. Returns the node for this segment onward. *)
  let rec explore acc len =
    if len > config.max_cycles_per_path then
      raise
        (Path_limit
           (Printf.sprintf "path exceeded %d cycles" config.max_cycles_per_path));
    match Engine.begin_cycle e with
    | `Ok ->
      let c = Engine.finish_cycle e in
      incr total_cycles;
      let acc = c :: acc in
      if config.is_end c then begin
        end_of_path ();
        Trace.Run { cycles = Array.of_list (List.rev acc); next = Trace.End_path }
      end
      else explore acc (len + 1)
    | `Fork ->
      incr forks;
      let snap = Engine.snapshot e in
      let branch v =
        Engine.restore e snap;
        Engine.force_fork e v;
        let c = Engine.finish_cycle e in
        incr total_cycles;
        let d = Engine.arch_digest e in
        let visits = Option.value ~default:0 (Hashtbl.find_opt seen d) in
        if visits > config.revisit_limit then begin
          incr dedup_hits;
          end_of_path ();
          Trace.Run { cycles = [| c |]; next = Trace.Seen d }
        end
        else begin
          Hashtbl.replace seen d (visits + 1);
          let slot =
            if visits = 0 then begin
              let r = ref Trace.End_path in
              Hashtbl.replace registry d r;
              Some r
            end
            else None
          in
          let node =
            if config.is_end c then begin
              end_of_path ();
              Trace.Run { cycles = [| c |]; next = Trace.End_path }
            end
            else explore [ c ] (len + 1)
          in
          (match slot with
          | Some r ->
            (* The registered continuation starts after cycle [c]; store
               the subtree minus this first cycle so peak-energy lookups
               do not double-count it. *)
            (match node with
            | Trace.Run { cycles; next } when Array.length cycles >= 1 ->
              r :=
                Trace.Run
                  { cycles = Array.sub cycles 1 (Array.length cycles - 1); next }
            | other -> r := other)
          | None -> ());
          node
        end
      in
      let not_taken = branch Tri.Zero in
      let taken = branch Tri.One in
      Trace.Run
        {
          cycles = Array.of_list (List.rev acc);
          next = Trace.Fork { not_taken; taken };
        }
  in
  let root = explore [] 0 in
  ( { Trace.root; registry; initial },
    {
      paths = !paths;
      forks = !forks;
      dedup_hits = !dedup_hits;
      total_cycles = !total_cycles;
    } )

let run_concrete e ~is_end ~max_cycles =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run_concrete: engine not fresh";
  do_reset e;
  let initial = Engine.values_snapshot e in
  let acc = ref [] in
  let rec go n =
    if n > max_cycles then
      raise (Path_limit (Printf.sprintf "concrete run exceeded %d cycles" max_cycles));
    let c = Engine.step e in
    acc := c :: !acc;
    if not (is_end c) then go (n + 1)
  in
  go 0;
  (Array.of_list (List.rev !acc), initial)
