(* ASCII rendering of tables and series for the experiment harness. *)

let table ~header ~rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    rows;
  let buf = Buffer.create 1024 in
  let line row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "%-*s" (widths.(i) + 2) cell))
      row;
    Buffer.add_char buf '\n'
  in
  line header;
  line (List.map (fun w -> String.make w '-') (Array.to_list (Array.sub widths 0 cols)));
  List.iter line rows;
  Buffer.contents buf

let spark_chars = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#"; "@" |]

(* A textual sparkline: one character per bucket, height-coded. *)
let series ?(width = 72) data =
  let n = Array.length data in
  if n = 0 then "(empty)"
  else begin
    let lo = Array.fold_left Float.min infinity data in
    let hi = Array.fold_left Float.max neg_infinity data in
    let buckets = min width n in
    let per = float_of_int n /. float_of_int buckets in
    let buf = Buffer.create (buckets + 16) in
    for b = 0 to buckets - 1 do
      let i0 = int_of_float (float_of_int b *. per) in
      let i1 = min (n - 1) (int_of_float ((float_of_int (b + 1) *. per) -. 1.)) in
      let m = ref neg_infinity in
      for i = i0 to max i0 i1 do
        if data.(i) > !m then m := data.(i)
      done;
      let level =
        if hi -. lo < 1e-30 then 0
        else
          int_of_float
            ((!m -. lo) /. (hi -. lo) *. float_of_int (Array.length spark_chars - 1))
      in
      Buffer.add_string buf spark_chars.(max 0 (min 9 level))
    done;
    Buffer.contents buf
  end

let mw w = Printf.sprintf "%.3f" (w *. 1e3)
let pj e = Printf.sprintf "%.2f" (e *. 1e12)
let pct x = Printf.sprintf "%.1f" x
let npe_pj e = Printf.sprintf "%.3f" (e *. 1e12)

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "%s\n%s\n" title bar
