lib/report/experiments.ml: Array Baselines Benchprogs Bytes Char Context Core Cpu Format Gatesim Hashtbl Isa List Netlist Option Optrun Poweran Printf Render Rtl Sizing Stdcell String Tri
