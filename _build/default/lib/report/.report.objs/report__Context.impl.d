lib/report/context.ml: Baselines Benchprogs Core Cpu Hashtbl Optrun Poweran Printf Stdcell
