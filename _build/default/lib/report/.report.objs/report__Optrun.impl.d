lib/report/optrun.ml: Benchprogs Core Isa List Poweran
