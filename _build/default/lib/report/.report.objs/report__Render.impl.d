lib/report/render.ml: Array Buffer Float List Printf String
