let base = 94
let first = Char.code '!'

let id_code n =
  if n < 0 then invalid_arg "Vcd.id_code";
  let rec go n acc =
    let digit = Char.chr (first + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

let of_id_code s =
  if String.length s = 0 then invalid_arg "Vcd.of_id_code";
  let v = ref 0 in
  String.iter
    (fun c ->
      let d = Char.code c - first in
      if d < 0 || d >= base then invalid_arg "Vcd.of_id_code";
      v := (!v * base) + d + 1)
    s;
  !v - 1

module Writer = struct
  type t = { buf : Buffer.t; mutable last_time : int }

  let create buf ~timescale ~names =
    Buffer.add_string buf "$comment xbound gate activity dump $end\n";
    Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
    Buffer.add_string buf "$scope module top $end\n";
    Array.iteri
      (fun i name ->
        Buffer.add_string buf
          (Printf.sprintf "$var wire 1 %s %s $end\n" (id_code i) name))
      names;
    Buffer.add_string buf "$upscope $end\n";
    Buffer.add_string buf "$enddefinitions $end\n";
    { buf; last_time = -1 }

  let time w t =
    if t <= w.last_time then invalid_arg "Vcd.Writer.time: not increasing";
    w.last_time <- t;
    Buffer.add_char w.buf '#';
    Buffer.add_string w.buf (string_of_int t);
    Buffer.add_char w.buf '\n'

  let change w net value =
    Buffer.add_char w.buf (Tri.to_char value);
    Buffer.add_string w.buf (id_code net);
    Buffer.add_char w.buf '\n'

  let dumpvars w values =
    Buffer.add_string w.buf "$dumpvars\n";
    Array.iteri (fun i v -> change w i v) values;
    Buffer.add_string w.buf "$end\n"

  let finish w = ignore w
end

let write_trace ~names ~initial ~changes =
  let buf = Buffer.create (4096 + (Array.length changes * 64)) in
  let w = Writer.create buf ~timescale:"10 ns" ~names in
  Writer.time w 0;
  Writer.dumpvars w initial;
  Array.iteri
    (fun c deltas ->
      if deltas <> [] then begin
        (* Cycle c's transitions land at time c+1: the trace's time-0
           values are the cycle-0 state. *)
        Writer.time w (c + 1);
        List.iter (fun (net, v) -> Writer.change w net v) deltas
      end)
    changes;
  Writer.finish w;
  Buffer.contents buf

type document = {
  timescale : string option;
  var_names : (int * string) list;
  initial : (int * Tri.t) list;
  steps : (int * (int * Tri.t) list) list;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse text =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (fun line ->
           String.split_on_char ' ' line |> List.filter (fun s -> s <> ""))
  in
  let timescale = ref None in
  let vars = ref [] in
  let steps = ref [] in
  let current_time = ref (-1) in
  let current_changes = ref [] in
  let in_dumpvars = ref false in
  let initial = ref [] in
  let flush_step () =
    if !current_time >= 0 then
      steps := (!current_time, List.rev !current_changes) :: !steps;
    current_changes := []
  in
  let rec skip_to_end = function
    | [] -> fail "unterminated $ directive"
    | "$end" :: rest -> rest
    | _ :: rest -> skip_to_end rest
  in
  let rec go = function
    | [] -> ()
    | "$timescale" :: rest ->
      let rec collect acc = function
        | "$end" :: rest -> (String.concat " " (List.rev acc), rest)
        | tok :: rest -> collect (tok :: acc) rest
        | [] -> fail "unterminated $timescale"
      in
      let ts, rest = collect [] rest in
      timescale := Some ts;
      go rest
    | "$var" :: _kind :: _width :: id :: name :: rest ->
      vars := (of_id_code id, name) :: !vars;
      let rest = skip_to_end rest in
      go rest
    | "$dumpvars" :: rest ->
      in_dumpvars := true;
      go rest
    | "$end" :: rest when !in_dumpvars ->
      in_dumpvars := false;
      go rest
    | ("$comment" | "$scope" | "$upscope" | "$enddefinitions" | "$date"
      | "$version") :: rest ->
      go (skip_to_end rest)
    | tok :: rest when String.length tok > 0 && tok.[0] = '#' ->
      flush_step ();
      (try current_time := int_of_string (String.sub tok 1 (String.length tok - 1))
       with Failure _ -> fail "bad timestamp %s" tok);
      go rest
    | tok :: rest when String.length tok >= 2 ->
      let v =
        try Tri.of_char tok.[0]
        with Invalid_argument _ -> fail "bad value char in %s" tok
      in
      let net = of_id_code (String.sub tok 1 (String.length tok - 1)) in
      if !in_dumpvars then initial := (net, v) :: !initial
      else if !current_time < 0 then fail "value change before first timestamp"
      else current_changes := (net, v) :: !current_changes;
      go rest
    | tok :: _ -> fail "unexpected token %s" tok
  in
  go tokens;
  flush_step ();
  {
    timescale = !timescale;
    var_names = List.rev !vars;
    initial = List.rev !initial;
    steps = List.rev !steps;
  }

let replay doc ~nets =
  let values = Array.make nets Tri.X in
  List.iter (fun (net, v) -> if net < nets then values.(net) <- v) doc.initial;
  List.map
    (fun (t, changes) ->
      List.iter (fun (net, v) -> if net < nets then values.(net) <- v) changes;
      (t, Array.copy values))
    doc.steps
