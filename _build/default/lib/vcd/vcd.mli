(** Value change dump (IEEE 1364 subset, three-valued).

    Algorithm 2 records the X-maximized activity of the flattened
    execution trace in two VCD files (even- and odd-cycle maximization);
    the power analyzer consumes them. Only scalar wires and the values
    [0], [1], [x] are supported — exactly what gate-level power analysis
    needs. *)

(** {1 Identifier codes} *)

(** [id_code n] is the printable short identifier for net [n]
    (base-94, characters ['!'..'~']). *)
val id_code : int -> string

val of_id_code : string -> int

(** {1 Writing} *)

module Writer : sig
  type t

  (** [create buf ~timescale ~names] writes the header declaring one
      scalar wire per element of [names]; net [i] gets id code
      [id_code i]. *)
  val create : Buffer.t -> timescale:string -> names:string array -> t

  (** [time w t] emits a [#t] timestamp. Timestamps must increase. *)
  val time : t -> int -> unit

  (** [change w net value] records a value change for [net] at the
      current time. *)
  val change : t -> int -> Tri.t -> unit

  (** [dumpvars w values] emits the initial [$dumpvars] block. *)
  val dumpvars : t -> Tri.t array -> unit

  val finish : t -> unit
end

(** [write_trace ~names ~initial ~changes] renders a full VCD document:
    [changes.(c)] lists the per-cycle value changes, applied at time
    [c]. *)
val write_trace :
  names:string array ->
  initial:Tri.t array ->
  changes:(int * Tri.t) list array ->
  string

(** {1 Parsing} *)

type document = {
  timescale : string option;
  var_names : (int * string) list;  (** net id (decoded) -> name *)
  initial : (int * Tri.t) list;
  steps : (int * (int * Tri.t) list) list;  (** time -> changes *)
}

exception Parse_error of string

val parse : string -> document

(** [replay doc ~nets] folds a document back into per-time dense value
    arrays (for round-trip tests and external traces). *)
val replay : document -> nets:int -> (int * Tri.t array) list
