(** Text-format assembler.

    Parses MSP430-subset assembly source into an {!Asm.program}, so
    applications can be brought to the tool as [.s] files rather than
    OCaml ASTs. The accepted syntax is the conventional MSP430 one:

    {v
        ; comment
        .org 0xE000          ; section origin (default 0xE000)
    start:
        mov   #0x5A80, &0x0120
        mov   &in, r4
        cmp   #5, r4
        jeq   equal
        mov   #1, r5
        jmp   _halt
    equal:
        mov   #2, r5
    _halt:
        jmp   _halt
    in:  .word 0x1234, 7, start
    v}

    Mnemonics: the Format-I/II/jump instructions of {!Insn} plus the
    standard emulated forms (nop, pop, ret, br, clr, inc, dec, tst,
    clrc, setc, clrz, clrn). [.w] suffixes are accepted; [.b] is
    rejected (word-only subset). Operands: [#imm], [&abs], [@rn],
    [@rn+], [off(rn)], [rN]/[pc]/[sp]/[sr], and symbols wherever a
    value may appear. Numbers are decimal, [0x..] hex, or ['-']
    negated. *)

exception Syntax_error of int * string  (** line number, message *)

(** [program ~name text] parses a full source file. The entry point is
    the label [start] (must exist); a [_halt] self-jump is appended if
    the source does not define [_halt]. *)
val program : name:string -> string -> Asm.program

(** [instr text] parses a single instruction line (no labels or
    directives) — handy for tests and tooling. *)
val instr : string -> Insn.instr
