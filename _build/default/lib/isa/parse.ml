exception Syntax_error of int * string

let err line fmt = Printf.ksprintf (fun s -> raise (Syntax_error (line, s))) fmt

(* ---------- lexical helpers ---------- *)

let strip s =
  let n = String.length s in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let drop_comment s =
  match String.index_opt s ';' with
  | Some k -> String.sub s 0 k
  | None -> s

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let lowercase = String.lowercase_ascii

(* split "mnemonic operands" *)
let split_mnemonic s =
  match String.index_opt s ' ' with
  | None -> (
    match String.index_opt s '\t' with
    | None -> (s, "")
    | Some k -> (String.sub s 0 k, strip (String.sub s k (String.length s - k))))
  | Some k -> (String.sub s 0 k, strip (String.sub s k (String.length s - k)))

(* split operands on top-level commas (no nesting to worry about) *)
let split_operands s =
  if strip s = "" then []
  else List.map strip (String.split_on_char ',' s)

(* ---------- values and registers ---------- *)

let parse_number line s =
  let s = strip s in
  let neg, s =
    if String.length s > 0 && s.[0] = '-' then
      (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let v =
    try
      if String.length s > 2 && (String.sub s 0 2 = "0x" || String.sub s 0 2 = "0X")
      then int_of_string s
      else int_of_string s
    with Failure _ -> err line "bad number %S" s
  in
  if neg then -v else v

let is_number s =
  let s = strip s in
  let s = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  String.length s > 0
  && (s.[0] >= '0' && s.[0] <= '9')

let parse_value line s =
  let s = strip s in
  if is_number s then Insn.Lit (parse_number line s)
  else begin
    (* symbol, possibly symbol+off / symbol-off *)
    let plus = String.index_opt s '+' in
    let minus = String.rindex_opt s '-' in
    match plus, minus with
    | Some k, _ ->
      Insn.Sym_off
        (strip (String.sub s 0 k), parse_number line (String.sub s (k + 1) (String.length s - k - 1)))
    | None, Some k when k > 0 ->
      Insn.Sym_off
        (strip (String.sub s 0 k), -parse_number line (String.sub s (k + 1) (String.length s - k - 1)))
    | None, _ ->
      if s = "" then err line "empty value";
      String.iter (fun c -> if not (is_ident_char c) then err line "bad symbol %S" s) s;
      Insn.Sym s
  end

let parse_reg line s =
  match lowercase (strip s) with
  | "pc" | "r0" -> 0
  | "sp" | "r1" -> 1
  | "sr" | "r2" -> 2
  | "cg" | "r3" -> 3
  | s when String.length s >= 2 && s.[0] = 'r' -> (
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 && n <= 15 -> n
    | _ -> err line "bad register %S" s)
  | s -> err line "bad register %S" s

let reg_opt s =
  match lowercase (strip s) with
  | "pc" | "r0" -> Some 0
  | "sp" | "r1" -> Some 1
  | "sr" | "r2" -> Some 2
  | "cg" | "r3" -> Some 3
  | s when String.length s >= 2 && s.[0] = 'r' -> (
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 && n <= 15 -> Some n
    | _ -> None)
  | _ -> None

(* ---------- operands ---------- *)

let parse_src line s =
  let s = strip s in
  if s = "" then err line "missing operand";
  if s.[0] = '#' then Insn.S_imm (parse_value line (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '&' then Insn.S_abs (parse_value line (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '@' then begin
    let rest = String.sub s 1 (String.length s - 1) in
    if String.length rest > 0 && rest.[String.length rest - 1] = '+' then
      Insn.S_ind_inc (parse_reg line (String.sub rest 0 (String.length rest - 1)))
    else Insn.S_ind (parse_reg line rest)
  end
  else
    match String.index_opt s '(' with
    | Some k ->
      let close =
        match String.index_opt s ')' with
        | Some c when c > k -> c
        | _ -> err line "unbalanced parentheses in %S" s
      in
      let off = parse_value line (String.sub s 0 k) in
      let r = parse_reg line (String.sub s (k + 1) (close - k - 1)) in
      Insn.S_idx (off, r)
    | None -> (
      match reg_opt s with
      | Some r -> Insn.S_reg r
      | None -> err line "bad source operand %S" s)

let parse_dst line s =
  match parse_src line s with
  | Insn.S_reg r -> Insn.D_reg r
  | Insn.S_idx (v, r) -> Insn.D_idx (v, r)
  | Insn.S_abs v -> Insn.D_abs v
  | Insn.S_imm _ | Insn.S_ind _ | Insn.S_ind_inc _ ->
    err line "bad destination operand %S" s

(* ---------- instructions ---------- *)

let op1_of_name = function
  | "mov" -> Some Insn.MOV
  | "add" -> Some Insn.ADD
  | "addc" -> Some Insn.ADDC
  | "subc" | "sbc" -> Some Insn.SUBC
  | "sub" -> Some Insn.SUB
  | "cmp" -> Some Insn.CMP
  | "bit" -> Some Insn.BIT
  | "bic" -> Some Insn.BIC
  | "bis" -> Some Insn.BIS
  | "xor" -> Some Insn.XOR
  | "and" -> Some Insn.AND
  | _ -> None

let op2_of_name = function
  | "rrc" -> Some Insn.RRC
  | "swpb" -> Some Insn.SWPB
  | "rra" -> Some Insn.RRA
  | "sxt" -> Some Insn.SXT
  | "push" -> Some Insn.PUSH
  | "call" -> Some Insn.CALL
  | _ -> None

let cond_of_name = function
  | "jne" | "jnz" -> Some Insn.JNE
  | "jeq" | "jz" -> Some Insn.JEQ
  | "jnc" | "jlo" -> Some Insn.JNC
  | "jc" | "jhs" -> Some Insn.JC
  | "jn" -> Some Insn.JN
  | "jge" -> Some Insn.JGE
  | "jl" -> Some Insn.JL
  | "jmp" -> Some Insn.JMP
  | _ -> None

let parse_instr_line line text =
  let mnemonic, rest = split_mnemonic (strip text) in
  let mnemonic = lowercase mnemonic in
  let mnemonic =
    if String.length mnemonic > 2 && String.sub mnemonic (String.length mnemonic - 2) 2 = ".w"
    then String.sub mnemonic 0 (String.length mnemonic - 2)
    else if
      String.length mnemonic > 2
      && String.sub mnemonic (String.length mnemonic - 2) 2 = ".b"
    then err line "byte operations are not supported (word-only subset)"
    else mnemonic
  in
  let ops = split_operands rest in
  let one () =
    match ops with [ a ] -> a | _ -> err line "%s expects one operand" mnemonic
  in
  let two () =
    match ops with
    | [ a; b ] -> (a, b)
    | _ -> err line "%s expects two operands" mnemonic
  in
  let none () =
    match ops with [] -> () | _ -> err line "%s expects no operands" mnemonic
  in
  match op1_of_name mnemonic with
  | Some op ->
    let s, d = two () in
    Insn.I1 (op, parse_src line s, parse_dst line d)
  | None -> (
    match op2_of_name mnemonic with
    | Some op -> Insn.I2 (op, parse_src line (one ()))
    | None -> (
      match cond_of_name mnemonic with
      | Some c -> Insn.J (c, parse_value line (one ()))
      | None -> (
        match mnemonic with
        | "reti" ->
          none ();
          Insn.RETI
        | "nop" ->
          none ();
          Insn.nop
        | "ret" ->
          none ();
          Insn.ret
        | "pop" -> Insn.pop (parse_reg line (one ()))
        | "br" -> Insn.br (parse_src line (one ()))
        | "clr" -> Insn.clr (parse_reg line (one ()))
        | "inc" -> Insn.inc_r (parse_reg line (one ()))
        | "dec" -> Insn.dec_r (parse_reg line (one ()))
        | "tst" -> Insn.tst (parse_reg line (one ()))
        | "clrc" ->
          none ();
          Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 1), Insn.D_reg 2)
        | "setc" ->
          none ();
          Insn.I1 (Insn.BIS, Insn.S_imm (Insn.Lit 1), Insn.D_reg 2)
        | "clrz" ->
          none ();
          Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 2), Insn.D_reg 2)
        | "clrn" ->
          none ();
          Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 4), Insn.D_reg 2)
        | _ -> err line "unknown mnemonic %S" mnemonic)))

let instr text = parse_instr_line 0 text

(* ---------- whole programs ---------- *)

type pending_section = { org : int; mutable rev_items : Asm.item list }

let program ~name text =
  let lines = String.split_on_char '\n' text in
  let sections = ref [] in
  let current = ref { org = Memmap.rom_base; rev_items = [] } in
  let has_halt = ref false in
  let push_section () =
    if !current.rev_items <> [] then
      sections := { !current with rev_items = !current.rev_items } :: !sections
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let s = strip (drop_comment raw) in
      if s <> "" then begin
        (* labels: one or more "ident:" prefixes *)
        let rec eat_labels s =
          match String.index_opt s ':' with
          | Some k
            when k > 0
                 && String.for_all is_ident_char (String.sub s 0 k)
                 && not (is_number (String.sub s 0 k)) ->
            let label = String.sub s 0 k in
            if label = "_halt" then has_halt := true;
            !current.rev_items <- Asm.Label label :: !current.rev_items;
            eat_labels (strip (String.sub s (k + 1) (String.length s - k - 1)))
          | _ -> s
        in
        let s = eat_labels s in
        if s <> "" then begin
          if s.[0] = '.' then begin
            let d, rest = split_mnemonic s in
            match lowercase d with
            | ".org" ->
              push_section ();
              current := { org = parse_number line rest; rev_items = [] }
            | ".word" ->
              List.iter
                (fun w ->
                  !current.rev_items <-
                    Asm.Word (parse_value line w) :: !current.rev_items)
                (split_operands rest)
            | d -> err line "unknown directive %S" d
          end
          else
            !current.rev_items <- Asm.I (parse_instr_line line s) :: !current.rev_items
        end
      end)
    lines;
  push_section ();
  let sections = List.rev !sections in
  let sections =
    List.map
      (fun s -> { Asm.org = s.org; items = List.rev s.rev_items })
      sections
  in
  let sections =
    if sections = [] then err 0 "empty program"
    else if !has_halt then sections
    else
      (* append the halt epilogue to the section holding the entry *)
      let has_start items =
        List.exists (function Asm.Label "start" -> true | _ -> false) items
      in
      List.map
        (fun (sec : Asm.section) ->
          if has_start sec.Asm.items then
            { sec with Asm.items = sec.Asm.items @ Asm.halt_items }
          else sec)
        sections
  in
  { Asm.name; entry = "start"; sections }
