lib/isa/listing.ml: Asm Buffer Hashtbl Insn List Option Printf String
