lib/isa/iss.mli: Asm
