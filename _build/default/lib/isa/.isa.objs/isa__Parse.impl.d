lib/isa/parse.ml: Asm Insn List Memmap Printf String
