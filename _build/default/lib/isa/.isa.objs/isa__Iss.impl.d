lib/isa/iss.ml: Array Asm Insn List Memmap Printf
