lib/isa/insn.ml: Format Option Printf
