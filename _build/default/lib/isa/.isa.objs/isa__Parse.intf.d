lib/isa/parse.mli: Asm Insn
