lib/isa/asm.ml: Hashtbl Insn Int List Memmap Printf String
