lib/isa/listing.mli: Asm
