lib/isa/memmap.ml:
