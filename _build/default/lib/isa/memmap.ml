(* Memory map shared by the reference ISS and the gate-level CPU. A
   simplified MSP430 layout: 2 KB RAM, 8 KB ROM, and the standard
   peripheral addresses used by the paper's benchmarks and
   optimizations. *)

let sfr_ie1 = 0x0000
let sfr_ifg1 = 0x0002
let p1in = 0x0020
let p1out = 0x0022
let wdtctl = 0x0120
let mpy = 0x0130 (* unsigned multiply operand 1 *)
let mpys = 0x0132 (* signed multiply operand 1 *)
let op2 = 0x0138 (* operand 2; writing starts the multiply *)
let reslo = 0x013A
let reshi = 0x013C
let sumext = 0x013E
let ram_base = 0x0200
let ram_size = 2048 (* bytes *)
let ram_limit = ram_base + ram_size
let rom_base = 0xE000
let rom_size = 8192 (* bytes *)
let reset_vector = 0xFFFE

let in_ram a = a >= ram_base && a < ram_limit
let in_rom a = a >= rom_base && a < 0x10000

let is_peripheral a =
  a = sfr_ie1 || a = sfr_ifg1 || a = p1in || a = p1out || a = wdtctl
  || (a >= mpy && a <= sumext)
