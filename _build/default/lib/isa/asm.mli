(** Two-pass assembler for MSP430-subset programs.

    Programs are authored as OCaml ASTs (lists of {!item}s in placed
    {!section}s); this is the substitute for the msp430-gcc flow that
    produced the paper's benchmark binaries. *)

type item =
  | Label of string
  | I of Insn.instr
  | Word of Insn.value  (** one initialized data word *)
  | Words of int list  (** several literal data words *)

type section = { org : int; items : item list }

type program = {
  name : string;
  sections : section list;
  entry : string;  (** label of the first instruction *)
}

type image = {
  words : (int * int) list;  (** even address -> 16-bit word, sorted *)
  symbols : (string * int) list;
  entry_addr : int;
  halt_addr : int;  (** address of the final self-jump, see below *)
}

exception Asm_error of string

(** [assemble p] lays out and encodes [p]. The reset vector (0xFFFE) is
    pointed at [p.entry] automatically. Every program must define a
    label ["_halt"] whose instruction is a self-jump; analyses treat
    reaching it as end-of-application. *)
val assemble : program -> image

(** [lookup image sym] raises [Asm_error] for undefined symbols. *)
val lookup : image -> string -> int

(** Convenience: the standard epilogue [_halt: jmp _halt]. *)
val halt_items : item list
