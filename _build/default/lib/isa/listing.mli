(** Disassembly listings.

    Renders an assembled image as an annotated listing: address,
    encoded words, decoded instruction (or [.word] for data that does
    not decode). Instruction boundaries are tracked by following the
    decoder's extension-word consumption from the entry point. *)

(** One listing line. *)
type line = {
  addr : int;
  words : int list;  (** opcode word plus extension words *)
  text : string;  (** mnemonic or [.word 0x....] *)
  symbol : string option;  (** label defined at this address *)
}

val lines : Asm.image -> line list
val to_string : Asm.image -> string
