type reg = int

let pc = 0
let sp = 1
let sr = 2
let cg = 3

type op1 = MOV | ADD | ADDC | SUBC | SUB | CMP | BIT | BIC | BIS | XOR | AND
type op2 = RRC | SWPB | RRA | SXT | PUSH | CALL
type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP
type value = Lit of int | Sym of string | Sym_off of string * int

type src =
  | S_reg of reg
  | S_idx of value * reg
  | S_ind of reg
  | S_ind_inc of reg
  | S_imm of value
  | S_abs of value

type dst = D_reg of reg | D_idx of value * reg | D_abs of value

type instr =
  | I1 of op1 * src * dst
  | I2 of op2 * src
  | J of cond * value
  | RETI

let nop = I1 (MOV, S_imm (Lit 0), D_reg cg)
let pop r = I1 (MOV, S_ind_inc sp, D_reg r)
let ret = I1 (MOV, S_ind_inc sp, D_reg pc)
let br s = I1 (MOV, s, D_reg pc)
let clr r = I1 (MOV, S_imm (Lit 0), D_reg r)
let inc_r r = I1 (ADD, S_imm (Lit 1), D_reg r)
let dec_r r = I1 (SUB, S_imm (Lit 1), D_reg r)
let tst r = I1 (CMP, S_imm (Lit 0), D_reg r)

exception Encode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

let op1_code = function
  | MOV -> 0x4
  | ADD -> 0x5
  | ADDC -> 0x6
  | SUBC -> 0x7
  | SUB -> 0x8
  | CMP -> 0x9
  | BIT -> 0xB
  | BIC -> 0xC
  | BIS -> 0xD
  | XOR -> 0xE
  | AND -> 0xF

let op1_of_code = function
  | 0x4 -> Some MOV
  | 0x5 -> Some ADD
  | 0x6 -> Some ADDC
  | 0x7 -> Some SUBC
  | 0x8 -> Some SUB
  | 0x9 -> Some CMP
  | 0xB -> Some BIT
  | 0xC -> Some BIC
  | 0xD -> Some BIS
  | 0xE -> Some XOR
  | 0xF -> Some AND
  | _ -> None

let op2_code = function
  | RRC -> 0
  | SWPB -> 1
  | RRA -> 2
  | SXT -> 3
  | PUSH -> 4
  | CALL -> 5

let cond_code = function
  | JNE -> 0
  | JEQ -> 1
  | JNC -> 2
  | JC -> 3
  | JN -> 4
  | JGE -> 5
  | JL -> 6
  | JMP -> 7

let cond_of_code = function
  | 0 -> JNE
  | 1 -> JEQ
  | 2 -> JNC
  | 3 -> JC
  | 4 -> JN
  | 5 -> JGE
  | 6 -> JL
  | _ -> JMP

let mask16 v = v land 0xFFFF

let resolve ~lookup = function
  | Lit n -> mask16 n
  | Sym s -> mask16 (lookup s)
  | Sym_off (s, off) -> mask16 (lookup s + off)

(* Source operand field encoding: (src reg, As bits, extension word).
   Constant-generator encodings follow the MSP430 convention. *)
let encode_src ~lookup s =
  let imm_cg n =
    match mask16 n with
    | 0 -> Some (3, 0b00)
    | 1 -> Some (3, 0b01)
    | 2 -> Some (3, 0b10)
    | 0xFFFF -> Some (3, 0b11)
    | 4 -> Some (2, 0b10)
    | 8 -> Some (2, 0b11)
    | _ -> None
  in
  match s with
  | S_reg r ->
    if r = 3 then err "S_reg r3 reads the constant generator; use S_imm";
    (r, 0b00, None)
  | S_idx (v, r) ->
    if r <= 3 then err "S_idx with r%d is reserved" r;
    (r, 0b01, Some (resolve ~lookup v))
  | S_ind r ->
    if r = 2 || r = 3 then err "S_ind with r%d is a constant generator" r;
    (r, 0b10, None)
  | S_ind_inc r ->
    if r = 2 || r = 3 then err "S_ind_inc with r%d is a constant generator" r;
    (r, 0b11, None)
  | S_imm v -> begin
    match v with
    | Lit n when imm_cg n <> None ->
      let r, a = Option.get (imm_cg n) in
      (r, a, None)
    | _ -> (0, 0b11, Some (resolve ~lookup v))
  end
  | S_abs v -> (2, 0b01, Some (resolve ~lookup v))

let encode_dst ~lookup d =
  match d with
  | D_reg r -> (r, 0, None)
  | D_idx (v, r) ->
    if r <= 3 then err "D_idx with r%d is reserved" r;
    (r, 1, Some (resolve ~lookup v))
  | D_abs v -> (2, 1, Some (resolve ~lookup v))

let src_ext_words = function
  | S_reg _ | S_ind _ | S_ind_inc _ -> 0
  | S_idx _ | S_abs _ -> 1
  | S_imm (Lit n) -> begin
    match mask16 n with 0 | 1 | 2 | 4 | 8 | 0xFFFF -> 0 | _ -> 1
  end
  | S_imm _ -> 1

let dst_ext_words = function D_reg _ -> 0 | D_idx _ | D_abs _ -> 1

let size_words = function
  | I1 (_, s, d) -> 1 + src_ext_words s + dst_ext_words d
  | I2 (_, s) -> 1 + src_ext_words s
  | J _ | RETI -> 1

let encode ~lookup ~pc:pc_addr = function
  | I1 (op, s, d) ->
    let rs, as_, ext_s = encode_src ~lookup s in
    let rd, ad, ext_d = encode_dst ~lookup d in
    let w =
      (op1_code op lsl 12) lor (rs lsl 8) lor (ad lsl 7) lor (as_ lsl 4) lor rd
    in
    (w :: Option.to_list ext_s) @ Option.to_list ext_d
  | I2 (op, s) ->
    let rs, as_, ext_s = encode_src ~lookup s in
    let w = (0b000100 lsl 10) lor (op2_code op lsl 7) lor (as_ lsl 4) lor rs in
    w :: Option.to_list ext_s
  | RETI -> [ (0b000100 lsl 10) lor (6 lsl 7) ]
  | J (c, v) ->
    let target = resolve ~lookup v in
    let diff = target - (pc_addr + 2) in
    if diff land 1 <> 0 then err "jump target 0x%04x misaligned" target;
    let off =
      let d = diff asr 1 in
      (* interpret 16-bit wrap-around as signed *)
      let d = if d > 0x7FFF then d - 0x10000 else d in
      d
    in
    if off < -512 || off > 511 then
      err "jump offset %d out of range (target 0x%04x)" off target;
    [ (0b001 lsl 13) lor (cond_code c lsl 10) lor (off land 0x3FF) ]

type decoded = { instr : instr; n_ext : int }

exception Decode_error of int

let decode_src ~ext rs as_ =
  (* Returns (src, ext words consumed). *)
  match as_, rs with
  | 0b00, 3 -> (S_imm (Lit 0), 0)
  | 0b01, 3 -> (S_imm (Lit 1), 0)
  | 0b10, 3 -> (S_imm (Lit 2), 0)
  | 0b11, 3 -> (S_imm (Lit 0xFFFF), 0)
  | 0b10, 2 -> (S_imm (Lit 4), 0)
  | 0b11, 2 -> (S_imm (Lit 8), 0)
  | 0b01, 2 -> (S_abs (Lit ext), 1)
  | 0b11, 0 -> (S_imm (Lit ext), 1)
  | 0b00, r -> (S_reg r, 0)
  | 0b01, r -> (S_idx (Lit ext, r), 1)
  | 0b10, r -> (S_ind r, 0)
  | 0b11, r -> (S_ind_inc r, 0)
  | _ -> assert false

let decode w ~ext1 ~ext2 ~pc:pc_addr =
  let w = mask16 w in
  let top3 = w lsr 13 in
  if top3 = 0b001 then begin
    let c = cond_of_code ((w lsr 10) land 0x7) in
    let off = w land 0x3FF in
    let off = if off >= 512 then off - 1024 else off in
    let target = mask16 (pc_addr + 2 + (2 * off)) in
    { instr = J (c, Lit target); n_ext = 0 }
  end
  else if w lsr 10 = 0b000100 then begin
    let opc = (w lsr 7) land 0x7 in
    if opc = 6 then { instr = RETI; n_ext = 0 }
    else if opc = 7 then raise (Decode_error w)
    else begin
      let op =
        match opc with
        | 0 -> RRC
        | 1 -> SWPB
        | 2 -> RRA
        | 3 -> SXT
        | 4 -> PUSH
        | _ -> CALL
      in
      if (w lsr 6) land 1 = 1 then raise (Decode_error w) (* byte mode *);
      let s, n = decode_src ~ext:ext1 (w land 0xF) ((w lsr 4) land 0x3) in
      { instr = I2 (op, s); n_ext = n }
    end
  end
  else begin
    match op1_of_code (w lsr 12) with
    | None -> raise (Decode_error w)
    | Some op ->
      if (w lsr 6) land 1 = 1 then raise (Decode_error w) (* byte mode *);
      let rs = (w lsr 8) land 0xF in
      let ad = (w lsr 7) land 1 in
      let as_ = (w lsr 4) land 0x3 in
      let rd = w land 0xF in
      let s, n_src = decode_src ~ext:ext1 rs as_ in
      let dext = if n_src = 0 then ext1 else ext2 in
      let d, n_dst =
        if ad = 0 then (D_reg rd, 0)
        else if rd = 2 then (D_abs (Lit dext), 1)
        else (D_idx (Lit dext, rd), 1)
      in
      { instr = I1 (op, s, d); n_ext = n_src + n_dst }
  end

(* Timing of the reference multi-cycle micro-architecture:
   FETCH, [SRC_EXT], [SRC_READ], [DST_EXT], [DST_READ], EXEC, [WRITE].
   {!Cpu} implements exactly this state machine; {!Iss} charges these
   counts. *)
let src_cycles = function
  | S_reg _ -> 0
  | S_imm (Lit n) when (match mask16 n with 0 | 1 | 2 | 4 | 8 | 0xFFFF -> true | _ -> false) -> 0
  | S_imm _ -> 1 (* SRC_EXT carries the value *)
  | S_ind _ | S_ind_inc _ -> 1 (* SRC_READ *)
  | S_idx _ | S_abs _ -> 2 (* SRC_EXT + SRC_READ *)

let op1_reads_dst = function
  | MOV -> false
  | ADD | ADDC | SUBC | SUB | CMP | BIT | BIC | BIS | XOR | AND -> true

let op1_writes_dst = function
  | CMP | BIT -> false
  | MOV | ADD | ADDC | SUBC | SUB | BIC | BIS | XOR | AND -> true

let dst_cycles op = function
  | D_reg _ -> 0
  | D_idx _ | D_abs _ ->
    1 (* DST_EXT *)
    + (if op1_reads_dst op then 1 else 0)
    + if op1_writes_dst op then 1 else 0

let cycles = function
  | I1 (op, s, d) -> 1 + src_cycles s + dst_cycles op d + 1
  | I2 ((RRC | SWPB | RRA | SXT), (S_reg _ as s)) -> 2 + src_cycles s
  | I2 ((RRC | SWPB | RRA | SXT), s) ->
    (* read-modify-write through memory: operand read + EXEC + WRITE *)
    1 + src_cycles s + 1 + 1
  | I2 (PUSH, s) -> 1 + src_cycles s + 1 + 1
  | I2 (CALL, s) -> 1 + src_cycles s + 1 + 1
  | J _ -> 2
  | RETI -> 3

let pp_reg fmt r =
  match r with
  | 0 -> Format.pp_print_string fmt "pc"
  | 1 -> Format.pp_print_string fmt "sp"
  | 2 -> Format.pp_print_string fmt "sr"
  | _ -> Format.fprintf fmt "r%d" r

let pp_value fmt = function
  | Lit n -> Format.fprintf fmt "0x%04x" (mask16 n)
  | Sym s -> Format.pp_print_string fmt s
  | Sym_off (s, o) -> Format.fprintf fmt "%s%+d" s o

let pp_src fmt = function
  | S_reg r -> pp_reg fmt r
  | S_idx (v, r) -> Format.fprintf fmt "%a(%a)" pp_value v pp_reg r
  | S_ind r -> Format.fprintf fmt "@%a" pp_reg r
  | S_ind_inc r -> Format.fprintf fmt "@%a+" pp_reg r
  | S_imm v -> Format.fprintf fmt "#%a" pp_value v
  | S_abs v -> Format.fprintf fmt "&%a" pp_value v

let pp_dst fmt = function
  | D_reg r -> pp_reg fmt r
  | D_idx (v, r) -> Format.fprintf fmt "%a(%a)" pp_value v pp_reg r
  | D_abs v -> Format.fprintf fmt "&%a" pp_value v

let op1_name = function
  | MOV -> "mov"
  | ADD -> "add"
  | ADDC -> "addc"
  | SUBC -> "subc"
  | SUB -> "sub"
  | CMP -> "cmp"
  | BIT -> "bit"
  | BIC -> "bic"
  | BIS -> "bis"
  | XOR -> "xor"
  | AND -> "and"

let op2_name = function
  | RRC -> "rrc"
  | SWPB -> "swpb"
  | RRA -> "rra"
  | SXT -> "sxt"
  | PUSH -> "push"
  | CALL -> "call"

let cond_name = function
  | JNE -> "jne"
  | JEQ -> "jeq"
  | JNC -> "jnc"
  | JC -> "jc"
  | JN -> "jn"
  | JGE -> "jge"
  | JL -> "jl"
  | JMP -> "jmp"

let pp_instr fmt = function
  | I1 (MOV, S_imm (Lit 0), D_reg 3) -> Format.pp_print_string fmt "nop"
  | I1 (MOV, S_ind_inc 1, D_reg 0) -> Format.pp_print_string fmt "ret"
  | I1 (MOV, S_ind_inc 1, D_reg r) -> Format.fprintf fmt "pop %a" pp_reg r
  | I1 (op, s, d) ->
    Format.fprintf fmt "%s %a, %a" (op1_name op) pp_src s pp_dst d
  | I2 (op, s) -> Format.fprintf fmt "%s %a" (op2_name op) pp_src s
  | J (c, v) -> Format.fprintf fmt "%s %a" (cond_name c) pp_value v
  | RETI -> Format.pp_print_string fmt "reti"

let to_string i = Format.asprintf "%a" pp_instr i
