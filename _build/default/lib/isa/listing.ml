type line = {
  addr : int;
  words : int list;
  text : string;
  symbol : string option;
}

let lines (img : Asm.image) =
  let word_at = Hashtbl.create 64 in
  List.iter (fun (a, w) -> Hashtbl.replace word_at a w) img.Asm.words;
  let symbol_at = Hashtbl.create 64 in
  List.iter (fun (s, a) -> Hashtbl.replace symbol_at a s) img.Asm.symbols;
  (* decode contiguous stretches; addresses in ascending order *)
  let addrs = List.sort compare (List.map fst img.Asm.words) in
  let out = ref [] in
  let consumed = Hashtbl.create 64 in
  List.iter
    (fun a ->
      if not (Hashtbl.mem consumed a) then begin
        let w = Hashtbl.find word_at a in
        let ext k = Option.value ~default:0 (Hashtbl.find_opt word_at (a + (2 * k))) in
        let line =
          match Insn.decode w ~ext1:(ext 1) ~ext2:(ext 2) ~pc:a with
          | { Insn.instr; n_ext } ->
            (* only treat as an instruction if its extension words exist *)
            let have_exts =
              List.for_all
                (fun k -> Hashtbl.mem word_at (a + (2 * k)))
                (List.init n_ext (fun k -> k + 1))
            in
            if have_exts then begin
              let words = List.init (n_ext + 1) (fun k -> ext k) in
              List.iteri
                (fun k _ -> if k > 0 then Hashtbl.replace consumed (a + (2 * k)) ())
                words;
              { addr = a; words; text = Insn.to_string instr;
                symbol = Hashtbl.find_opt symbol_at a }
            end
            else
              { addr = a; words = [ w ]; text = Printf.sprintf ".word 0x%04x" w;
                symbol = Hashtbl.find_opt symbol_at a }
          | exception Insn.Decode_error _ ->
            { addr = a; words = [ w ]; text = Printf.sprintf ".word 0x%04x" w;
              symbol = Hashtbl.find_opt symbol_at a }
        in
        out := line :: !out
      end)
    addrs;
  List.rev !out

let to_string img =
  let buf = Buffer.create 4096 in
  List.iter
    (fun l ->
      (match l.symbol with
      | Some s -> Buffer.add_string buf (Printf.sprintf "%s:\n" s)
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "  %04x: %-14s %s\n" l.addr
           (String.concat " " (List.map (Printf.sprintf "%04x") l.words))
           l.text))
    (lines img);
  Buffer.contents buf
