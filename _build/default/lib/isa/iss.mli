(** Reference instruction-set simulator.

    A concrete (two-valued) interpreter for the MSP430 subset, including
    the memory-mapped multiplier, watchdog control, SFRs and port 1. It
    is the executable specification of {!Cpu}: the gate-level processor
    is validated by lockstep comparison of architectural state against
    this interpreter, and it charges exactly the cycle counts of
    {!Insn.cycles}. *)

type t = {
  regs : int array;  (** 16 registers, 16-bit values *)
  ram : int array;  (** word-indexed *)
  rom : int array;  (** word-indexed *)
  mutable mpy_op1 : int;
  mutable mpy_signed : bool;
  mutable mpy_op2 : int;
  mutable reslo : int;
  mutable reshi : int;
  mutable sumext : int;
  mutable wdt : int;
  mutable p1out : int;
  mutable ie1 : int;
  mutable ifg1 : int;
  mutable p1in : int;  (** drive externally before port reads *)
  mutable cycles : int;
  mutable insn_count : int;
  mutable halted : bool;
  halt_addr : int;
}

exception Mem_fault of int  (** unmapped or misaligned access *)

exception Illegal of int  (** undecodable opcode word *)

(** [create image] loads the image's words (ROM contents and reset
    vector), zero-fills RAM, and sets the PC from the reset vector. *)
val create : Asm.image -> t

(** [write_word t addr w] stores through the full memory map (RAM and
    peripherals; ROM is read-only and faults). *)
val write_word : t -> int -> int -> unit

val read_word : t -> int -> int

(** [load_ram t ~addr ws] poke words into RAM (input data for concrete
    profiling runs). *)
val load_ram : t -> addr:int -> int list -> unit

(** Execute one instruction; updates [cycles] by {!Insn.cycles}. Sets
    [halted] when the halt self-jump is reached. *)
val step : t -> unit

(** [run ?max_insns t] steps until halted. Raises [Failure] if the
    instruction budget (default 1_000_000) is exhausted. *)
val run : ?max_insns:int -> t -> unit

(** {1 Status register accessors} *)

val flag_c : t -> bool
val flag_z : t -> bool
val flag_n : t -> bool
val flag_v : t -> bool
