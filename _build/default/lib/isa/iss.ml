type t = {
  regs : int array;
  ram : int array;
  rom : int array;
  mutable mpy_op1 : int;
  mutable mpy_signed : bool;
  mutable mpy_op2 : int;
  mutable reslo : int;
  mutable reshi : int;
  mutable sumext : int;
  mutable wdt : int;
  mutable p1out : int;
  mutable ie1 : int;
  mutable ifg1 : int;
  mutable p1in : int;
  mutable cycles : int;
  mutable insn_count : int;
  mutable halted : bool;
  halt_addr : int;
}

exception Mem_fault of int
exception Illegal of int

let m16 v = v land 0xFFFF

let create (img : Asm.image) =
  let rom = Array.make (Memmap.rom_size / 2) 0 in
  List.iter
    (fun (addr, w) ->
      if not (Memmap.in_rom addr) then
        invalid_arg (Printf.sprintf "Iss.create: image word at 0x%04x not in ROM" addr);
      rom.((addr - Memmap.rom_base) / 2) <- w)
    img.Asm.words;
  let t =
    {
      regs = Array.make 16 0;
      ram = Array.make (Memmap.ram_size / 2) 0;
      rom;
      mpy_op1 = 0;
      mpy_signed = false;
      mpy_op2 = 0;
      reslo = 0;
      reshi = 0;
      sumext = 0;
      wdt = 0;
      p1out = 0;
      ie1 = 0;
      ifg1 = 0;
      p1in = 0;
      cycles = 0;
      insn_count = 0;
      halted = false;
      halt_addr = img.Asm.halt_addr;
    }
  in
  t.regs.(0) <- img.Asm.entry_addr;
  (* Reset costs four cycles, matching the gate-level CPU: two cycles of
     reset assertion, one RESET state, one VECTOR fetch. *)
  t.cycles <- 4;
  t

let signed16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let do_multiply t =
  if t.mpy_signed then begin
    let p = signed16 t.mpy_op1 * signed16 t.mpy_op2 in
    let p32 = p land 0xFFFFFFFF in
    t.reslo <- m16 p32;
    t.reshi <- m16 (p32 lsr 16);
    t.sumext <- if p < 0 then 0xFFFF else 0
  end
  else begin
    let p = t.mpy_op1 * t.mpy_op2 in
    t.reslo <- m16 p;
    t.reshi <- m16 (p lsr 16);
    t.sumext <- 0
  end

let read_word t addr =
  let addr = m16 addr in
  if addr land 1 <> 0 then raise (Mem_fault addr);
  if Memmap.in_ram addr then t.ram.((addr - Memmap.ram_base) / 2)
  else if Memmap.in_rom addr then t.rom.((addr - Memmap.rom_base) / 2)
  else if addr = Memmap.p1in then t.p1in
  else if addr = Memmap.p1out then t.p1out
  else if addr = Memmap.wdtctl then 0x6900 lor (t.wdt land 0xFF)
  else if addr = Memmap.sfr_ie1 then t.ie1
  else if addr = Memmap.sfr_ifg1 then t.ifg1
  else if addr = Memmap.mpy || addr = Memmap.mpys then t.mpy_op1
  else if addr = Memmap.op2 then t.mpy_op2
  else if addr = Memmap.reslo then t.reslo
  else if addr = Memmap.reshi then t.reshi
  else if addr = Memmap.sumext then t.sumext
  else raise (Mem_fault addr)

let write_word t addr w =
  let addr = m16 addr and w = m16 w in
  if addr land 1 <> 0 then raise (Mem_fault addr);
  if Memmap.in_ram addr then t.ram.((addr - Memmap.ram_base) / 2) <- w
  else if addr = Memmap.p1out then t.p1out <- w
  else if addr = Memmap.wdtctl then t.wdt <- w land 0xFF
  else if addr = Memmap.sfr_ie1 then t.ie1 <- w
  else if addr = Memmap.sfr_ifg1 then t.ifg1 <- w
  else if addr = Memmap.mpy then begin
    t.mpy_op1 <- w;
    t.mpy_signed <- false
  end
  else if addr = Memmap.mpys then begin
    t.mpy_op1 <- w;
    t.mpy_signed <- true
  end
  else if addr = Memmap.op2 then begin
    t.mpy_op2 <- w;
    do_multiply t
  end
  else if addr = Memmap.reslo then t.reslo <- w
  else if addr = Memmap.reshi then t.reshi <- w
  else raise (Mem_fault addr)

let load_ram t ~addr ws =
  List.iteri (fun i w -> write_word t (addr + (2 * i)) w) ws

(* Status register bits *)
let bit_c = 0x0001
let bit_z = 0x0002
let bit_n = 0x0004
let bit_v = 0x0100

let flag_c t = t.regs.(2) land bit_c <> 0
let flag_z t = t.regs.(2) land bit_z <> 0
let flag_n t = t.regs.(2) land bit_n <> 0
let flag_v t = t.regs.(2) land bit_v <> 0

let set_flags t ~c ~z ~n ~v =
  let sr = t.regs.(2) land lnot (bit_c lor bit_z lor bit_n lor bit_v) in
  t.regs.(2) <-
    sr
    lor (if c then bit_c else 0)
    lor (if z then bit_z else 0)
    lor (if n then bit_n else 0)
    lor if v then bit_v else 0

let zn r = (r = 0, r land 0x8000 <> 0)

(* ALU with MSP430 flag semantics (word ops). Returns (result, flag
   update option); [None] means flags unchanged. *)
let alu1 t (op : Insn.op1) ~src ~dst =
  let module I = Insn in
  match op with
  | I.MOV -> (src, true)
  | I.ADD | I.ADDC ->
    let cin = if op = I.ADDC && flag_c t then 1 else 0 in
    let sum = dst + src + cin in
    let r = m16 sum in
    let z, n = zn r in
    let v = lnot (dst lxor src) land (dst lxor r) land 0x8000 <> 0 in
    set_flags t ~c:(sum > 0xFFFF) ~z ~n ~v;
    (r, true)
  | I.SUB | I.SUBC | I.CMP ->
    let cin =
      if op = I.SUBC then if flag_c t then 1 else 0
      else 1
    in
    let sum = dst + m16 (lnot src) + cin in
    let r = m16 sum in
    let z, n = zn r in
    let v = (dst lxor src) land (dst lxor r) land 0x8000 <> 0 in
    set_flags t ~c:(sum > 0xFFFF) ~z ~n ~v;
    ((if op = I.CMP then dst else r), op <> I.CMP)
  | I.BIT | I.AND ->
    let r = dst land src in
    let z, n = zn r in
    set_flags t ~c:(not z) ~z ~n ~v:false;
    ((if op = I.BIT then dst else r), op <> I.BIT)
  | I.XOR ->
    let r = dst lxor src in
    let z, n = zn r in
    let v = dst land src land 0x8000 <> 0 in
    set_flags t ~c:(not z) ~z ~n ~v;
    (r, true)
  | I.BIC -> (dst land m16 (lnot src), true)
  | I.BIS -> (dst lor src, true)

let cond_met t (c : Insn.cond) =
  match c with
  | Insn.JNE -> not (flag_z t)
  | Insn.JEQ -> flag_z t
  | Insn.JNC -> not (flag_c t)
  | Insn.JC -> flag_c t
  | Insn.JN -> flag_n t
  | Insn.JGE -> flag_n t = flag_v t
  | Insn.JL -> flag_n t <> flag_v t
  | Insn.JMP -> true

let lit = function
  | Insn.Lit n -> m16 n
  | Insn.Sym _ | Insn.Sym_off _ ->
    invalid_arg "Iss: unresolved symbol (decode always yields literals)"

(* Evaluate a source operand. Auto-increment side effects happen here,
   before the destination write, matching the gate CPU's SRC_READ
   state. *)
let eval_src t (s : Insn.src) =
  match s with
  | Insn.S_reg r -> t.regs.(r)
  | Insn.S_imm v -> lit v
  | Insn.S_idx (v, r) -> read_word t (m16 (t.regs.(r) + lit v))
  | Insn.S_ind r -> read_word t t.regs.(r)
  | Insn.S_ind_inc r ->
    let w = read_word t t.regs.(r) in
    t.regs.(r) <- m16 (t.regs.(r) + 2);
    w
  | Insn.S_abs v -> read_word t (lit v)

let dst_value t (d : Insn.dst) =
  match d with
  | Insn.D_reg r -> t.regs.(r)
  | Insn.D_idx (v, r) -> read_word t (m16 (t.regs.(r) + lit v))
  | Insn.D_abs v -> read_word t (lit v)

let write_dst t (d : Insn.dst) w =
  match d with
  | Insn.D_reg r -> t.regs.(r) <- m16 w
  | Insn.D_idx (v, r) -> write_word t (m16 (t.regs.(r) + lit v)) w
  | Insn.D_abs v -> write_word t (lit v) w

let push t w =
  t.regs.(1) <- m16 (t.regs.(1) - 2);
  write_word t t.regs.(1) w

let step t =
  if t.halted then ()
  else begin
    let pc0 = t.regs.(0) in
    if pc0 = t.halt_addr then t.halted <- true
    else begin
      let w = read_word t pc0 in
      let ext1 = if Memmap.in_rom (pc0 + 2) then read_word t (m16 (pc0 + 2)) else 0 in
      let ext2 = if Memmap.in_rom (pc0 + 4) then read_word t (m16 (pc0 + 4)) else 0 in
      let { Insn.instr; n_ext } =
        try Insn.decode w ~ext1 ~ext2 ~pc:pc0 with Insn.Decode_error w -> raise (Illegal w)
      in
      t.regs.(0) <- m16 (pc0 + 2 + (2 * n_ext));
      (match instr with
      | Insn.I1 (op, s, d) ->
        let src = eval_src t s in
        let dstv = if Insn.op1_reads_dst op then dst_value t d else 0 in
        let r, write = alu1 t op ~src ~dst:dstv in
        if write then write_dst t d r
      | Insn.I2 (op, s) -> begin
        match op with
        | Insn.PUSH ->
          let v = eval_src t s in
          push t v
        | Insn.CALL ->
          (* The operand is an address; for @Rn etc. it is the word read
             from memory, for #imm the literal. *)
          let target =
            match s with
            | Insn.S_imm v -> lit v
            | Insn.S_reg r -> t.regs.(r)
            | _ -> eval_src t s
          in
          push t t.regs.(0);
          t.regs.(0) <- target
        | Insn.RRA | Insn.RRC | Insn.SWPB | Insn.SXT ->
          let operand, write_back =
            match s with
            | Insn.S_reg r -> (t.regs.(r), fun w -> t.regs.(r) <- w)
            | Insn.S_ind r ->
              let a = t.regs.(r) in
              (read_word t a, fun w -> write_word t a w)
            | Insn.S_idx (v, r) ->
              let a = m16 (t.regs.(r) + lit v) in
              (read_word t a, fun w -> write_word t a w)
            | Insn.S_abs v ->
              let a = lit v in
              (read_word t a, fun w -> write_word t a w)
            | Insn.S_ind_inc _ | Insn.S_imm _ ->
              raise (Illegal w)
          in
          let r =
            match op with
            | Insn.RRA ->
              let r = (operand lsr 1) lor (operand land 0x8000) in
              let z, n = zn r in
              set_flags t ~c:(operand land 1 <> 0) ~z ~n ~v:false;
              r
            | Insn.RRC ->
              let r = (operand lsr 1) lor (if flag_c t then 0x8000 else 0) in
              let z, n = zn r in
              set_flags t ~c:(operand land 1 <> 0) ~z ~n ~v:false;
              r
            | Insn.SWPB -> ((operand land 0xFF) lsl 8) lor (operand lsr 8)
            | Insn.SXT ->
              let r = m16 (if operand land 0x80 <> 0 then operand lor 0xFF00 else operand land 0xFF) in
              let z, n = zn r in
              set_flags t ~c:(not z) ~z ~n ~v:false;
              r
            | Insn.PUSH | Insn.CALL -> assert false
          in
          write_back (m16 r)
        end
      | Insn.J (c, v) -> if cond_met t c then t.regs.(0) <- lit v
      | Insn.RETI ->
        t.regs.(2) <- read_word t t.regs.(1);
        t.regs.(1) <- m16 (t.regs.(1) + 2);
        t.regs.(0) <- read_word t t.regs.(1);
        t.regs.(1) <- m16 (t.regs.(1) + 2));
      t.cycles <- t.cycles + Insn.cycles instr;
      t.insn_count <- t.insn_count + 1
    end
  end

let run ?(max_insns = 1_000_000) t =
  let n = ref 0 in
  while (not t.halted) && !n < max_insns do
    step t;
    incr n
  done;
  if not t.halted then failwith "Iss.run: instruction budget exhausted"
