type item =
  | Label of string
  | I of Insn.instr
  | Word of Insn.value
  | Words of int list

type section = { org : int; items : item list }
type program = { name : string; sections : section list; entry : string }

type image = {
  words : (int * int) list;
  symbols : (string * int) list;
  entry_addr : int;
  halt_addr : int;
}

exception Asm_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

let item_bytes = function
  | Label _ -> 0
  | I i -> 2 * Insn.size_words i
  | Word _ -> 2
  | Words ws -> 2 * List.length ws

let halt_items = [ Label "_halt"; I (Insn.J (Insn.JMP, Insn.Sym "_halt")) ]

let assemble p =
  (* Pass 1: layout. *)
  let symbols = Hashtbl.create 64 in
  List.iter
    (fun sec ->
      if sec.org land 1 <> 0 then err "%s: odd section origin 0x%x" p.name sec.org;
      let addr = ref sec.org in
      List.iter
        (fun item ->
          (match item with
          | Label l ->
            if Hashtbl.mem symbols l then err "%s: duplicate label %s" p.name l;
            Hashtbl.replace symbols l !addr
          | I _ | Word _ | Words _ -> ());
          addr := !addr + item_bytes item)
        sec.items)
    p.sections;
  let lookup_sym s =
    match Hashtbl.find_opt symbols s with
    | Some a -> a
    | None -> err "%s: undefined symbol %s" p.name s
  in
  (* Pass 2: encode. *)
  let out = ref [] in
  let emit addr w =
    if addr land 1 <> 0 then err "%s: odd word address 0x%x" p.name addr;
    out := (addr land 0xFFFF, w land 0xFFFF) :: !out
  in
  List.iter
    (fun sec ->
      let addr = ref sec.org in
      List.iter
        (fun item ->
          (match item with
          | Label _ -> ()
          | I i ->
            let ws =
              try Insn.encode ~lookup:lookup_sym ~pc:!addr i
              with Insn.Encode_error m -> err "%s @0x%04x: %s" p.name !addr m
            in
            List.iteri (fun k w -> emit (!addr + (2 * k)) w) ws
          | Word v ->
            let n =
              match v with
              | Insn.Lit n -> n
              | Insn.Sym s -> lookup_sym s
              | Insn.Sym_off (s, o) -> lookup_sym s + o
            in
            emit !addr n
          | Words ws -> List.iteri (fun k w -> emit (!addr + (2 * k)) w) ws);
          addr := !addr + item_bytes item)
        sec.items)
    p.sections;
  let entry_addr = lookup_sym p.entry in
  let halt_addr = lookup_sym "_halt" in
  emit Memmap.reset_vector entry_addr;
  let words = List.sort (fun (a, _) (b, _) -> Int.compare a b) !out in
  (* Overlap check. *)
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then err "%s: overlapping words at 0x%04x" p.name a;
      check rest
    | _ -> ()
  in
  check words;
  let symbols =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { words; symbols; entry_addr; halt_addr }

let lookup img s =
  match List.assoc_opt s img.symbols with
  | Some a -> a
  | None -> err "undefined symbol %s" s
