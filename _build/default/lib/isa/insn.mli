(** MSP430-subset instruction set.

    Word-sized operations only (no [.B] forms), no [DADD], no interrupts
    in the core flow — see DESIGN.md §2. Registers follow MSP430
    conventions: [r0] = PC, [r1] = SP, [r2] = SR / constant generator 1,
    [r3] = constant generator 2, [r4]–[r15] general purpose. *)

type reg = int  (** 0..15 *)

val pc : reg
val sp : reg
val sr : reg
val cg : reg

(** Format-I (double operand) opcodes. *)
type op1 = MOV | ADD | ADDC | SUBC | SUB | CMP | BIT | BIC | BIS | XOR | AND

(** Format-II (single operand) opcodes. [RETI] is encoded separately. *)
type op2 = RRC | SWPB | RRA | SXT | PUSH | CALL

(** Jump conditions. *)
type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

(** A link-time value: a literal or a symbol (+offset). *)
type value = Lit of int | Sym of string | Sym_off of string * int

(** Source operands. [Imm] assembles to [@PC+] or a constant-generator
    encoding when the literal is one of 0, 1, 2, 4, 8, -1. [Abs] is
    absolute addressing ([&addr], via [r2] As=01). *)
type src =
  | S_reg of reg
  | S_idx of value * reg  (** x(Rn) *)
  | S_ind of reg  (** @Rn *)
  | S_ind_inc of reg  (** @Rn+ *)
  | S_imm of value  (** #v *)
  | S_abs of value  (** &addr *)

type dst =
  | D_reg of reg
  | D_idx of value * reg
  | D_abs of value

type instr =
  | I1 of op1 * src * dst
  | I2 of op2 * src
  | J of cond * value  (** target is an absolute address/symbol *)
  | RETI

(** {1 Derived (emulated) instructions} *)

val nop : instr  (** MOV #0, r3 (the canonical MSP430 NOP) *)

val pop : reg -> instr  (** MOV @SP+, dst *)

val ret : instr  (** MOV @SP+, PC *)

val br : src -> instr  (** MOV src, PC *)

val clr : reg -> instr
val inc_r : reg -> instr
val dec_r : reg -> instr
val tst : reg -> instr

(** {1 Encoding}

    An encoded instruction is the opcode word plus 0–2 extension words
    (source first). Encoding a symbolic [value] requires an environment. *)

exception Encode_error of string

val encode : lookup:(string -> int) -> pc:int -> instr -> int list

(** Number of words the instruction occupies (1–3); independent of the
    environment. *)
val size_words : instr -> int

(** [op1_reads_dst op] — does the operation consume the old destination
    value (everything but MOV)? *)
val op1_reads_dst : op1 -> bool

(** [op1_writes_dst op] — does the operation write a result (everything
    but CMP and BIT)? *)
val op1_writes_dst : op1 -> bool

(** {1 Decoding} *)

type decoded = {
  instr : instr;  (** symbolic values never appear; [Lit] only *)
  n_ext : int;  (** extension words consumed *)
}

exception Decode_error of int  (** the offending opcode word *)

(** [decode w ~ext1 ~ext2 ~pc] decodes opcode word [w]; extension words
    are consulted lazily. [pc] is the address of the opcode word
    (needed for jump targets). *)
val decode : int -> ext1:int -> ext2:int -> pc:int -> decoded

(** {1 Timing}

    Cycle cost of an instruction on the reference multi-cycle
    micro-architecture (and on {!Cpu}, which implements the same state
    machine). *)

val cycles : instr -> int

(** {1 Printing} *)

val pp_reg : Format.formatter -> reg -> unit
val pp_instr : Format.formatter -> instr -> unit
val to_string : instr -> string
