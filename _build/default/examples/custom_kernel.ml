(* Bringing your own application to the tool.

   Write a kernel with the assembly EDSL, check it against a golden
   model on the reference ISS, then bound its peak power and energy —
   including the input-independence guarantee: the bound holds for
   every possible content of the input region.

   The kernel: an exponentially-weighted moving average (EWMA) over 6
   unknown samples, y += (x - y) / 4, a classic sensor smoother.

   Run with: dune exec examples/custom_kernel.exe *)

open Benchprogs.Bench.E

let n = 6
let in_at k = Benchprogs.Bench.input_base + (2 * k)
let out_addr = Benchprogs.Bench.output_base

let body =
  [
    mov (imm 0) (dreg 5) (* y *);
    mov (imm Benchprogs.Bench.input_base) (dreg 4);
    mov (imm n) (dreg 10);
    lbl "ewma";
    mov (indinc 4) (dreg 6);
    sub (reg 5) (dreg 6) (* x - y *);
    rra 6;
    rra 6 (* (x - y) / 4, arithmetic *);
    add (reg 6) (dreg 5);
    sub (imm 1) (dreg 10);
    jne "ewma";
    mov (reg 5) (dabs out_addr);
  ]

(* golden model, mirroring the 16-bit arithmetic *)
let reference inputs =
  let m16 v = v land 0xFFFF in
  let sra v = (v lsr 1) lor (v land 0x8000) in
  List.fold_left (fun y x -> m16 (y + sra (sra (m16 (x - y))))) 0 inputs

let () =
  let image =
    Isa.Asm.assemble
      {
        Isa.Asm.name = "ewma";
        entry = "start";
        sections =
          [
            {
              Isa.Asm.org = Isa.Memmap.rom_base;
              items = ((Isa.Asm.Label "start" :: prologue) @ body) @ Isa.Asm.halt_items;
            };
          ];
      }
  in
  (* 1. functional check on the reference ISS *)
  List.iter
    (fun seed ->
      let inputs = Benchprogs.Bench.lcg_words ~seed n in
      let iss = Isa.Iss.create image in
      List.iteri (fun k w -> Isa.Iss.write_word iss (in_at k) w) inputs;
      Isa.Iss.run iss;
      let got = Isa.Iss.read_word iss out_addr in
      let want = reference inputs in
      if got <> want then failwith (Printf.sprintf "mismatch: %d vs %d" got want);
      Printf.printf "seed %2d: ewma = 0x%04x (matches golden model)\n" seed got)
    [ 1; 2; 3 ];

  (* 2. input-independent peak power/energy bounds *)
  let cpu = Cpu.build () in
  let pa = Core.Analyze.poweran_for cpu in
  let a = Core.Analyze.run pa cpu image in
  Printf.printf
    "\nX-based analysis: %d paths (every possible input), %d cycles\n"
    a.Core.Analyze.sym_stats.Gatesim.Sym.paths
    a.Core.Analyze.sym_stats.Gatesim.Sym.total_cycles;
  Printf.printf "peak power bound:  %.4f mW\n" (a.Core.Analyze.peak_power *. 1e3);
  Printf.printf "peak energy bound: %.4f nJ\n"
    (a.Core.Analyze.peak_energy.Core.Peak_energy.energy *. 1e9);

  (* 3. the bound really is input-independent: adversarial inputs stay
     below it *)
  List.iter
    (fun (label, inputs) ->
      let _, trace = Core.Analyze.run_concrete pa cpu image
          ~inputs:[ (Benchprogs.Bench.input_base, inputs) ]
      in
      let peak, _ = Poweran.peak_of trace in
      Printf.printf "%-12s concrete peak %.4f mW (<= bound: %b)\n" label
        (peak *. 1e3)
        (peak <= a.Core.Analyze.peak_power))
    [
      ("zeros", List.init n (fun _ -> 0));
      ("alternating", List.init n (fun k -> if k mod 2 = 0 then 0xAAAA else 0x5555));
      ("all-ones", List.init n (fun _ -> 0xFFFF));
    ]
