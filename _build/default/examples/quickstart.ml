(* Quickstart: bound the peak power and energy of a small application.

   Pipeline (paper, Figure 3.1):
     application binary + processor netlist
       -> symbolic (X-propagating) gate-level simulation   [Gatesim.Sym]
       -> activity-annotated execution tree                [Gatesim.Trace]
       -> peak power / peak energy computation             [Core]

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Elaborate the ULP processor to a gate-level netlist. *)
  let cpu = Cpu.build () in
  Printf.printf "processor: %d gates, %d flops\n"
    (Netlist.gate_count cpu.Cpu.netlist)
    (Netlist.dff_count cpu.Cpu.netlist);

  (* 2. Write an application. This one reads a sensor sample from RAM
     (never initialized by the binary, so the analysis treats it as
     unknown), scales it with the hardware multiplier, and stores the
     result. *)
  let open Benchprogs.Bench.E in
  let sample_addr = Benchprogs.Bench.input_base in
  let result_addr = Benchprogs.Bench.output_base in
  let app =
    prologue
    @ [
        mov (abs sample_addr) (dreg 4);
        mov (reg 4) (dabs Isa.Memmap.mpy);
        mov (imm 25) (dabs Isa.Memmap.op2);
        mul_reslo 5;
        mov (reg 5) (dabs result_addr);
      ]
  in
  let image =
    Isa.Asm.assemble
      {
        Isa.Asm.name = "quickstart";
        entry = "start";
        sections =
          [
            {
              Isa.Asm.org = Isa.Memmap.rom_base;
              items = (Isa.Asm.Label "start" :: app) @ Isa.Asm.halt_items;
            };
          ];
      }
  in

  (* 3. Analyze: symbolic simulation + peak power/energy bounds. *)
  let pa = Core.Analyze.poweran_for cpu in
  let a = Core.Analyze.run pa cpu image in
  Printf.printf "symbolic execution explored %d path(s), %d cycles\n"
    a.Core.Analyze.sym_stats.Gatesim.Sym.paths
    a.Core.Analyze.sym_stats.Gatesim.Sym.total_cycles;
  Printf.printf "guaranteed peak power:  %.4f mW\n"
    (a.Core.Analyze.peak_power *. 1e3);
  Printf.printf "guaranteed peak energy: %.4f nJ (%.3f pJ/cycle)\n"
    (a.Core.Analyze.peak_energy.Core.Peak_energy.energy *. 1e9)
    (a.Core.Analyze.peak_energy.Core.Peak_energy.npe *. 1e12);

  (* 4. Sanity: a concrete run with a specific input must stay below the
     bound for every cycle. *)
  let _, trace =
    Core.Analyze.run_concrete pa cpu image ~inputs:[ (sample_addr, [ 1234 ]) ]
  in
  let concrete_peak, _ = Poweran.peak_of trace in
  Printf.printf "concrete run peak:      %.4f mW (bound holds: %b)\n"
    (concrete_peak *. 1e3)
    (concrete_peak <= a.Core.Analyze.peak_power)
