(* Guided peak-power optimization (paper, Sections 3.5 and 5.1).

   The analysis identifies the cycles of interest (power spikes), the
   instruction in flight and the per-module breakdown at each; the
   optimizer then applies the matching software transforms and keeps
   only those that provably reduce the bound without hurting
   performance.

   Run with: dune exec examples/optimize_app.exe *)

let () =
  let ctx = Report.Context.create ~log:(fun _ -> ()) () in
  let b = Benchprogs.Bench.find "mult" in
  let a = Report.Context.analysis ctx b in

  print_endline "--- cycles of interest before optimization ---";
  List.iter
    (fun coi -> Format.printf "%a" Core.Coi.pp coi)
    (Core.Analyze.cois ctx.Report.Context.pa a ~top:2 ~min_gap:4);

  print_endline "--- greedy optimization ---";
  let o = Report.Context.optimization ctx b in
  (match o.Report.Optrun.chosen with
  | [] -> print_endline "no transform reduced the bound"
  | opts ->
    List.iter (fun opt -> Printf.printf "applied: %s\n" (Core.Optimize.name opt)) opts);
  Printf.printf "peak power: %.4f mW -> %.4f mW (%.1f%% lower)\n"
    (o.Report.Optrun.base_peak *. 1e3)
    (o.Report.Optrun.opt_peak *. 1e3)
    (Report.Optrun.peak_reduction_pct o);
  Printf.printf "dynamic range reduction: %.1f%%\n"
    (Report.Optrun.range_reduction_pct o);
  Printf.printf "performance cost: %.2f%%, energy cost: %.2f%%\n"
    (Report.Optrun.perf_degradation_pct o)
    (Report.Optrun.energy_overhead_pct o);

  print_endline "--- traces ---";
  Printf.printf "before: %s\n"
    (Report.Render.series a.Core.Analyze.power_trace);
  Printf.printf "after:  %s\n"
    (Report.Render.series o.Report.Optrun.opt_analysis.Core.Analyze.power_trace)
