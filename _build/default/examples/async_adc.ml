(* Bounding a complete system: processor + asynchronous ADC (paper,
   Chapter 6).

   Peripherals that run asynchronously to the CPU cannot be folded into
   the application's execution tree; they are analyzed separately with
   every input unknown, and their worst-case power is added. This
   example builds a small successive-approximation ADC controller with
   the same RTL combinators as the processor, bounds it with the same
   machinery, and composes the system requirement.

   Run with: dune exec examples/async_adc.exe *)

(* An 8-bit SAR ADC controller: a bit counter, the SAR shift logic and
   a comparator input pin. Everything a real controller has except the
   analog parts. *)
let build_adc () =
  let c = Rtl.create () in
  let open Rtl in
  set_module c "adc_ctrl";
  let reset = input c in
  let start = input c (* conversion request, unknown timing *) in
  let cmp_in = input c (* comparator output, unknown *) in
  let busy = reg c ~width:1 in
  let bit_cnt = reg c ~width:3 in
  let sar = reg c ~width:8 in
  let result = reg c ~width:8 in
  let busy_q = (q busy).(0) in
  let idle = not_ c busy_q in
  let go = and_ c idle start in
  let last_bit = eq_const c (q bit_cnt) 7 in
  connect c busy ~reset ~reset_to:0
    [| or_ c go (and_ c busy_q (not_ c last_bit)) |];
  connect c bit_cnt ~reset ~reset_to:0 ~enable:busy_q (inc c (q bit_cnt));
  (* SAR: current trial bit set, resolved by the comparator *)
  let onehot = decode c (q bit_cnt) in
  let trial = Array.init 8 (fun k -> onehot.(7 - k)) in
  let next_sar =
    Array.init 8 (fun k ->
        (* keep resolved bits; the trial bit takes the comparator value *)
        mux c ~sel:trial.(k) (q sar).(k) cmp_in)
  in
  connect c sar ~reset ~reset_to:0 ~enable:busy_q next_sar;
  connect c result ~reset ~reset_to:0 ~enable:(and_ c busy_q last_bit) (q sar);
  let gnd0 = gnd c in
  let nl = freeze c in
  ( nl,
    {
      Gatesim.Engine.reset;
      port_in = [| start; cmp_in |];
      mem_addr = [| gnd0 |];
      mem_rdata = [||];
      mem_wdata = [| gnd0 |];
      mem_ren = gnd0;
      mem_wen = gnd0;
      pc = [| gnd0 |];
      state = [| gnd0 |];
      ir = [| gnd0 |];
      fork_net = None;
    } )

let () =
  (* the processor side: a sampling application *)
  let ctx = Report.Context.create ~log:(fun _ -> ()) () in
  let app = Report.Context.analysis ctx (Benchprogs.Bench.find "intAVG") in
  Printf.printf "processor running intAVG: peak %.3f mW\n"
    (app.Core.Analyze.peak_power *. 1e3);

  (* the asynchronous ADC controller, analyzed on its own netlist *)
  let nl, ports = build_adc () in
  Printf.printf "ADC controller: %d gates, %d flops\n" (Netlist.gate_count nl)
    (Netlist.dff_count nl);
  let pa_adc = Poweran.create nl Stdcell.default ~period:1e-8 in
  let adc = Core.Async.analyze pa_adc ~ports ~cycles:512 in
  Printf.printf
    "ADC worst-case power (all inputs unknown): %.4f mW (saturated after %d \
     cycles: %b)\n"
    (adc.Core.Async.peak_power *. 1e3)
    adc.Core.Async.cycles_simulated adc.Core.Async.saturated;

  (* system composition per the paper *)
  let system =
    Core.Async.add_to ~cpu_bound:app.Core.Analyze.peak_power
      ~peripherals:[ adc ]
  in
  Printf.printf "system bound (processor + ADC): %.3f mW\n" (system *. 1e3);
  Printf.printf
    "(the peripheral adds %.1f%% — asynchronous machines are small, so the\n\
    \ always-worst-case assumption costs little)\n"
    (100. *. (system -. app.Core.Analyze.peak_power) /. app.Core.Analyze.peak_power)
