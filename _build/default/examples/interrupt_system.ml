(* Sizing a system with an interrupt service routine and a second
   program image (paper, Chapter 6).

   The main flow is a sampling loop (intAVG); a communication ISR
   (ConvEn encodes a status word) may run up to twice per activation.
   Both are ordinary routines analyzed with the ordinary technique; the
   combination rules give the system's requirement. We also show the
   union-of-activities bound for a dual-image (self-modifying or
   dynamically-linked) deployment.

   Run with: dune exec examples/interrupt_system.exe *)

let () =
  let ctx = Report.Context.create ~log:(fun _ -> ()) () in
  let analyze name =
    Report.Context.analysis ctx (Benchprogs.Bench.find name)
  in
  let main = analyze "intAVG" in
  let isr = analyze "ConvEn" in
  Printf.printf "main flow (intAVG): peak %.3f mW, energy %.3f nJ\n"
    (main.Core.Analyze.peak_power *. 1e3)
    (main.Core.Analyze.peak_energy.Core.Peak_energy.energy *. 1e9);
  Printf.printf "ISR (ConvEn):       peak %.3f mW, energy %.3f nJ\n"
    (isr.Core.Analyze.peak_power *. 1e3)
    (isr.Core.Analyze.peak_energy.Core.Peak_energy.energy *. 1e9);

  (* interrupt combination: detection logic burns a constant 20 uW; at
     most 2 ISR invocations per activation *)
  let sys =
    Core.Multiprog.combine_isr ~main ~isr ~max_invocations:2
      ~detection_power:20e-6
  in
  Printf.printf
    "\nsystem requirement with the ISR:\n  peak %.3f mW, energy %.3f nJ\n"
    (sys.Core.Multiprog.peak_power *. 1e3)
    (sys.Core.Multiprog.peak_energy *. 1e9);

  (* dual-image deployment: one image at a time vs union bound *)
  Printf.printf "\ndual-image deployment:\n";
  Printf.printf "  one-at-a-time requirement: %.3f mW\n"
    (Core.Multiprog.max_peak [ main; isr ] *. 1e3);
  Printf.printf "  union-of-activities bound: %.3f mW (conservative)\n"
    (Core.Multiprog.union_peak_bound ctx.Report.Context.pa
       [ main.Core.Analyze.tree; isr.Core.Analyze.tree ]
    *. 1e3);

  (* what the tighter bound buys at the system level *)
  let gb = Baselines.Profiling.run ctx.Report.Context.pa ctx.Report.Context.cpu
      (Benchprogs.Bench.find "intAVG")
  in
  let pv = Sizing.Harvester.find "Photovoltaic (indoor)" in
  Printf.printf
    "\nharvester for the main flow: %.1f cm^2 (X-based) vs %.1f cm^2 \
     (guardbanded profiling)\n"
    (Sizing.Harvester.area_cm2 pv ~power_w:sys.Core.Multiprog.peak_power)
    (Sizing.Harvester.area_cm2 pv ~power_w:(gb.Baselines.Profiling.gb_peak +. 20e-6))
