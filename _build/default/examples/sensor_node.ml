(* Sizing an energy-harvesting sensor node (paper, Chapter 1).

   A Type-1 system (powered directly by a harvester) must size the
   harvester for peak power; Type-2/3 systems size their battery from
   the peak energy requirement. This example bounds the requirements of
   a filtering application with the X-based analysis, compares against
   the guardbanded-profiling baseline, and translates the difference
   into harvester area and battery volume.

   Run with: dune exec examples/sensor_node.exe *)

let () =
  let cpu = Cpu.build () in
  let pa = Core.Analyze.poweran_for cpu in
  let b = Benchprogs.Bench.find "intFilt" in
  Printf.printf "application: %s (%s)\n\n" b.Benchprogs.Bench.name
    b.Benchprogs.Bench.description;

  (* guaranteed bounds from hardware-software co-analysis *)
  let a =
    Core.Analyze.run pa cpu (Benchprogs.Bench.assemble b)
  in
  let x_peak = a.Core.Analyze.peak_power in
  let x_npe = a.Core.Analyze.peak_energy.Core.Peak_energy.npe in

  (* the conventional alternative: profile a few input sets, guardband *)
  let p = Baselines.Profiling.run pa cpu b in
  let gb_peak = p.Baselines.Profiling.gb_peak in
  let gb_npe = p.Baselines.Profiling.gb_npe in

  Printf.printf "peak power:  X-based %.3f mW vs guardbanded profiling %.3f mW\n"
    (x_peak *. 1e3) (gb_peak *. 1e3);
  Printf.printf "peak energy: X-based %.3f pJ/cycle vs guardbanded %.3f pJ/cycle\n\n"
    (x_npe *. 1e12) (gb_npe *. 1e12);

  (* Type 1: harvester sized by peak power *)
  let indoor = Sizing.Harvester.find "Photovoltaic (indoor)" in
  let area_gb = Sizing.Harvester.area_cm2 indoor ~power_w:gb_peak in
  let area_x = Sizing.Harvester.area_cm2 indoor ~power_w:x_peak in
  Printf.printf "Type 1 (indoor photovoltaic): %.1f cm^2 -> %.1f cm^2 (%.1f%% smaller)\n"
    area_gb area_x
    (Sizing.reduction_pct ~baseline:gb_peak ~ours:x_peak ~fraction:1.0);

  (* Type 3: battery sized by energy over the mission *)
  let mission_days = 365. in
  let duty_cycle = 0.01 (* 1% compute, 99% sleep *) in
  let avg_power npe = npe /. Poweran.period pa in
  let mission_energy npe =
    avg_power npe *. duty_cycle *. (mission_days *. 86_400.)
  in
  let li = Sizing.Battery.find "Li-ion" in
  let vol_gb = Sizing.Battery.volume_l li ~energy_j:(mission_energy gb_npe) in
  let vol_x = Sizing.Battery.volume_l li ~energy_j:(mission_energy x_npe) in
  Printf.printf
    "Type 3 (Li-ion, 1 year at 1%% duty): %.2f mL -> %.2f mL (%.1f%% smaller)\n"
    (vol_gb *. 1e3) (vol_x *. 1e3)
    (Sizing.reduction_pct ~baseline:gb_npe ~ours:x_npe ~fraction:1.0);

  (* the paper's worked example: eZ430-RF2500-SEH class node *)
  let area_saved, volume_saved =
    Sizing.sensor_node_savings ~baseline_peak:gb_peak ~x_peak
      ~baseline_energy:gb_npe ~x_energy:x_npe
  in
  Printf.printf
    "eZ430-class node: %.2f cm^2 of solar cell and %.2f mm^3 of battery saved\n"
    area_saved volume_saved
