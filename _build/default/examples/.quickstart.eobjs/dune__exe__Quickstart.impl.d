examples/quickstart.ml: Benchprogs Core Cpu Gatesim Isa Netlist Poweran Printf
