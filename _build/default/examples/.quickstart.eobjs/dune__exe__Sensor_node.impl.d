examples/sensor_node.ml: Baselines Benchprogs Core Cpu Poweran Printf Sizing
