examples/custom_kernel.ml: Benchprogs Core Cpu Gatesim Isa List Poweran Printf
