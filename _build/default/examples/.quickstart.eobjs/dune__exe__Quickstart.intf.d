examples/quickstart.mli:
