examples/async_adc.ml: Array Benchprogs Core Gatesim Netlist Poweran Printf Report Rtl Stdcell
