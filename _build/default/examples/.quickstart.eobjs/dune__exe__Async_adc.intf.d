examples/async_adc.mli:
