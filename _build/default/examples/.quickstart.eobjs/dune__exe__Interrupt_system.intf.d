examples/interrupt_system.mli:
