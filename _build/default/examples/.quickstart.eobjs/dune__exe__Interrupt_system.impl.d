examples/interrupt_system.ml: Baselines Benchprogs Core Printf Report Sizing
