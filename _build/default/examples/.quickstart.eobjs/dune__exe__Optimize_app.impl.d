examples/optimize_app.ml: Benchprogs Core Format List Printf Report
