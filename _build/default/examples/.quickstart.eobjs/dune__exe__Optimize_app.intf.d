examples/optimize_app.mli:
